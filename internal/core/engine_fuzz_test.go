package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzEngineTick hardens the engine against hostile rows at the service
// boundary: arbitrary widths (wrong-width rows must be rejected without
// state changes), ±Inf (rejected), NaN (missing marker, imputed or
// cold-filled), and arbitrary bit patterns. The engine must never panic, a
// rejected row must leave the tick counter untouched, and an accepted row
// must come back fully finite.
func FuzzEngineTick(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 0x3f, 1, 2, 3})
	// One Inf, one NaN, one negative zero among plain values.
	seed := make([]byte, 0, 2+5*8)
	seed = append(seed, 4)
	for _, v := range []float64{math.Inf(1), math.NaN(), math.Copysign(0, -1), 3.5} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 4
		cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 16}
		eng, err := NewEngine(cfg, []string{"a", "b", "c", "d"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the window with clean rows so imputation paths actually run.
		for tk := 0; tk < 20; tk++ {
			row := make([]float64, width)
			for i := range row {
				row[i] = math.Sin(float64(tk)/3 + float64(i))
			}
			if _, _, err := eng.Tick(row); err != nil {
				t.Fatalf("warmup tick %d: %v", tk, err)
			}
		}

		for len(data) > 0 {
			// First byte picks the row width (0..8); the rest supplies value
			// bits, zero-padded when the input runs dry.
			n := int(data[0] % 9)
			data = data[1:]
			row := make([]float64, n)
			for i := range row {
				var bits uint64
				if len(data) >= 8 {
					bits = binary.LittleEndian.Uint64(data)
					data = data[8:]
				} else {
					for j, b := range data {
						bits |= uint64(b) << (8 * j)
					}
					data = nil
				}
				row[i] = math.Float64frombits(bits)
			}

			before := eng.Stats.Ticks
			wantErr := n != width
			for _, v := range row {
				if math.IsInf(v, 0) {
					wantErr = true
				}
			}
			out, _, err := eng.Tick(row)
			if wantErr {
				if err == nil {
					t.Fatalf("row %v (len %d) accepted, want rejection", row, n)
				}
				if eng.Stats.Ticks != before {
					t.Fatalf("rejected row advanced the tick counter %d -> %d", before, eng.Stats.Ticks)
				}
				continue
			}
			if err != nil {
				t.Fatalf("valid row %v rejected: %v", row, err)
			}
			if eng.Stats.Ticks != before+1 {
				t.Fatalf("accepted row moved tick counter %d -> %d", before, eng.Stats.Ticks)
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("completed row[%d] = %v not finite (in %v)", i, v, row)
				}
			}
		}
	})
}

// FuzzEngineTickColumns is the columnar twin of FuzzEngineTick: for an
// arbitrary fuzz-chosen missing pattern — including ticks where every stream
// is missing at once — TickColumns must produce bit-identical outputs and
// statistics to feeding the same rows through sequential Tick calls.
func FuzzEngineTickColumns(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0f, 0xff, 0x00, 0x3c, 0xa5})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 4
		cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 16}
		refs := map[string]ReferenceSet{
			"a": {Stream: "a", Candidates: []string{"c", "d"}},
			"b": {Stream: "b", Candidates: []string{"c", "d"}},
		}
		names := []string{"a", "b", "c", "d"}
		colEng, err := NewEngine(cfg, names, refs)
		if err != nil {
			t.Fatal(err)
		}
		seqEng, err := NewEngine(cfg, names, map[string]ReferenceSet{
			"a": refs["a"], "b": refs["b"],
		})
		if err != nil {
			t.Fatal(err)
		}
		// Warm both engines identically, then build one batch whose missing
		// pattern comes from the fuzz input: each input byte masks one tick
		// (bit i set = stream i missing; 0b1111 = entirely missing tick).
		row := make([]float64, width)
		for tk := 0; tk < 20; tk++ {
			for i := range row {
				row[i] = math.Sin(float64(tk)/3 + float64(i))
			}
			if _, _, err := colEng.Tick(row); err != nil {
				t.Fatal(err)
			}
			if _, _, err := seqEng.Tick(row); err != nil {
				t.Fatal(err)
			}
		}
		n := len(data)
		if n > 64 {
			n = 64
		}
		cols := make(Columns, width)
		for i := range cols {
			cols[i] = make([]float64, n)
		}
		for tk := 0; tk < n; tk++ {
			for i := 0; i < width; i++ {
				cols[i][tk] = math.Sin(float64(20+tk)/3+float64(i)) + float64(data[tk]>>4)/31
				if data[tk]&(1<<i) != 0 {
					cols[i][tk] = math.NaN()
				}
			}
		}
		out, _, err := colEng.TickColumns(cols)
		if err != nil {
			t.Fatalf("TickColumns: %v", err)
		}
		for tk := 0; tk < n; tk++ {
			for i := 0; i < width; i++ {
				row[i] = cols[i][tk]
			}
			want, _, err := seqEng.Tick(row)
			if err != nil {
				t.Fatalf("tick %d: %v", tk, err)
			}
			for i := 0; i < width; i++ {
				if out[i][tk] != want[i] {
					t.Fatalf("tick %d stream %d: columnar %v != sequential %v (mask %#x)",
						tk, i, out[i][tk], want[i], data[tk])
				}
			}
		}
		if colEng.Stats != seqEng.Stats {
			t.Fatalf("stats diverged: columnar %+v, sequential %+v", colEng.Stats, seqEng.Stats)
		}
	})
}
