//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only. The returned release
// function unmaps the data, which must not be touched afterwards. An error
// (empty file, implausible size, mmap failure) sends the caller to the
// read-into-memory fallback.
func mapFile(f *os.File, size int64) ([]byte, func(), error) {
	if size <= 0 || size > maxSnapSection {
		return nil, nil, fmt.Errorf("core: unmappable image size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
