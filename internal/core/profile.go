package core

import (
	"math"
	"time"
)

// PhaseTimings records where one imputation spent its time, mirroring the
// performance breakdown of Sec. 7.4 (pattern extraction vs pattern
// selection vs value imputation). Alongside the wall-clock durations it
// reports deterministic operation counts for the two dominant phases, so
// tests can assert the structural claim (extraction, at O(d·l·L), dwarfs
// selection's O(k·L)) without flaking on machine speed.
type PhaseTimings struct {
	PatternExtraction time.Duration
	PatternSelection  time.Duration
	ValueImputation   time.Duration
	// ExtractionOps counts the element operations of the naive Def. 2
	// profile: d reference rows × l columns × (L − 2l + 1) anchors.
	ExtractionOps int64
	// SelectionOps counts the DP cell updates of anchor selection (Eq. 5):
	// k rows × (L − 2l + 1) candidate anchors.
	SelectionOps int64
}

// Total returns the summed phase time.
func (p PhaseTimings) Total() time.Duration {
	return p.PatternExtraction + p.PatternSelection + p.ValueImputation
}

// ExtractionFraction returns the share of time spent in pattern extraction,
// the phase the paper reports at ~92% of runtime under default parameters.
func (p PhaseTimings) ExtractionFraction() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.PatternExtraction) / float64(t)
}

// ImputeProfiled is Impute with per-phase wall-clock timing, used by the
// perf-breakdown experiment. Semantics are identical to Impute.
func ImputeProfiled(cfg Config, s []float64, refs [][]float64) (*Result, PhaseTimings, error) {
	var pt PhaseTimings
	if err := cfg.Validate(); err != nil {
		return nil, pt, err
	}
	l, k := cfg.PatternLength, cfg.K
	s, refs, filled := alignNewest(s, refs)
	nCand := filled - 2*l + 1
	if nCand < 1 || nCand < (k-1)*l+1 && cfg.Selection != SelectOverlapping || nCand < k && cfg.Selection == SelectOverlapping {
		return nil, pt, ErrInsufficientHistory
	}
	for _, r := range refs {
		for x := filled - l; x < filled; x++ {
			if math.IsNaN(r[x]) {
				return nil, pt, ErrMissingInQueryPattern
			}
		}
	}
	t0 := time.Now()
	d := dissimilarityProfile(refs, l, cfg.Norm, nil)
	pt.PatternExtraction = time.Since(t0)
	pt.ExtractionOps = int64(len(refs)) * int64(l) * int64(nCand)
	pt.SelectionOps = int64(k) * int64(nCand)

	t1 := time.Now()
	idx, sum, ok := selectAnchors(d, cfg.K, cfg.PatternLength, cfg.Selection, nil)
	pt.PatternSelection = time.Since(t1)
	if !ok {
		return nil, pt, ErrInsufficientHistory
	}

	t2 := time.Now()
	res := &Result{SumDissimilarity: sum}
	var plain, weighted, wsum float64
	n := 0
	for _, j := range idx {
		v := s[j+l-1]
		res.Anchors = append(res.Anchors, j+l-1)
		res.AnchorValues = append(res.AnchorValues, v)
		res.Dissimilarities = append(res.Dissimilarities, d[j])
		if math.IsNaN(v) {
			continue
		}
		plain += v
		w := 1.0 / (d[j] + 1e-9)
		weighted += w * v
		wsum += w
		n++
	}
	if n == 0 {
		return nil, pt, ErrInsufficientHistory
	}
	if cfg.WeightedMean {
		res.Value = weighted / wsum
	} else {
		res.Value = plain / float64(n)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.AnchorValues {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	res.Epsilon = hi - lo
	pt.ValueImputation = time.Since(t2)
	return res, pt, nil
}
