package core

import (
	"fmt"
	"os"
)

// RestoreEngineFile restores a Snapshot image from a file. On platforms that
// support it the file is memory-mapped for the duration of the restore, so a
// v3 image's page-aligned window region bulk-loads straight from the page
// cache without staging the whole image through a heap buffer — the cheap
// path engine hydration (internal/shard residency) leans on. The mapping is
// released before the call returns; platforms without mmap fall back to
// reading the file into memory.
func RestoreEngineFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if data, unmap, merr := mapFile(f, st.Size()); merr == nil {
		defer unmap()
		return RestoreEngineBytes(data)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	return RestoreEngineBytes(data)
}
