package core

import (
	"fmt"
	"math"

	"tkcm/internal/stats"
	"tkcm/internal/window"
)

// ReferenceSet holds the ordered candidate reference time series of one
// incomplete stream (Sec. 3): candidates are ranked by suitability (by
// domain experts in the paper; RankCandidates offers a data-driven fallback)
// and, at imputation time, the first d candidates with a present value at tn
// become the reference set Rs.
type ReferenceSet struct {
	// Stream is the name of the incomplete series s.
	Stream string
	// Candidates is the ordered sequence ⟨r1, r2, ...⟩ of candidate
	// reference stream names, best first.
	Candidates []string
}

// Pick returns the window indices of the first d candidates whose value at
// the current time is present (Sec. 3). It returns an error when fewer than
// d candidates qualify or a candidate name is unknown.
func (rs ReferenceSet) Pick(w *window.Window, d int) ([]int, error) {
	idx, err := rs.PickInto(w, d, nil)
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// PickInto is Pick with caller-provided storage: the picked indices are
// appended to dst (its length is reset first), so hot callers reuse one
// buffer across ticks. On error the returned slice still carries dst's
// storage (holding any partial pick), so callers can keep reusing it.
func (rs ReferenceSet) PickInto(w *window.Window, d int, dst []int) ([]int, error) {
	out := dst[:0]
	if cap(out) < d {
		out = make([]int, 0, d)
	}
	for _, name := range rs.Candidates {
		i := w.IndexOf(name)
		if i < 0 {
			return out, fmt.Errorf("core: unknown candidate reference series %q for stream %q", name, rs.Stream)
		}
		if math.IsNaN(w.Current(i)) {
			continue // r(tn) = NIL: not usable at this tick
		}
		out = append(out, i)
		if len(out) == d {
			return out, nil
		}
	}
	return out, fmt.Errorf("core: stream %q has only %d of %d usable reference series at the current tick", rs.Stream, len(out), d)
}

// RankCandidates orders the candidate streams for target by descending
// absolute Pearson correlation with the target over the provided aligned
// histories. histories maps stream name to its retained values; the target's
// own entry is ignored. This implements the "automatically determine the
// best candidate reference time series" future-work direction of Sec. 8 and
// substitutes for the paper's domain experts.
func RankCandidates(target string, histories map[string][]float64) ReferenceSet {
	tvals, ok := histories[target]
	rs := ReferenceSet{Stream: target}
	if !ok {
		return rs
	}
	type scored struct {
		name  string
		score float64
	}
	var cands []scored
	for name, vals := range histories {
		if name == target {
			continue
		}
		rho := stats.Pearson(tvals, vals)
		score := math.Abs(rho)
		if math.IsNaN(score) {
			score = -1
		}
		cands = append(cands, scored{name, score})
	}
	// Insertion sort by descending score, name ascending for determinism.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.score > a.score || (b.score == a.score && b.name < a.name) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	for _, c := range cands {
		rs.Candidates = append(rs.Candidates, c.name)
	}
	return rs
}
