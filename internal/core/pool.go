package core

import (
	"runtime"
	"sync"

	"tkcm/internal/window"
)

// tickJob is one extraction + selection task of a parallel tick: a distinct
// reference set and the selection a worker computes for it. The jobs slice
// and each job's refIdx/selection storage are engine-owned and reused
// across ticks.
type tickJob struct {
	refIdx []int
	sel    anchorSelection
	err    error
}

// tickTarget maps one missing stream onto the job (distinct reference set)
// whose selection it aggregates from.
type tickTarget struct {
	stream int
	job    int
}

// tickPool is the engine's persistent worker pool. It is started once, on
// the first tick that has work for it, and its goroutines live until
// Engine.Close or until the engine is garbage collected: a tick dispatches
// jobs over the channel and waits on the WaitGroup, so the steady-state
// fan-out costs channel sends instead of goroutine spawns and performs no
// allocations.
//
// The pool deliberately holds copies of everything its workers touch (the
// config, the window, the profiler) instead of the *Engine, so the worker
// goroutines never keep the engine struct reachable; a runtime cleanup
// registered at start closes the channel when an abandoned engine is
// collected, releasing the workers and, through them, the window and
// profiler state they pin.
type tickPool struct {
	cfg  Config
	w    *window.Window
	prof Profiler
	jobs chan *tickJob
	wg   sync.WaitGroup
	once sync.Once
}

// stop closes the job channel, terminating the workers. Idempotent: safe to
// call from both Engine.Close and the GC cleanup.
func (p *tickPool) stop() {
	p.once.Do(func() { close(p.jobs) })
}

// worker computes profile + anchor selections for jobs received over the
// pool channel until the pool is stopped. Each job only reads the window
// and prepared profiler state and writes its own selection slot, so
// concurrent jobs never write shared state.
func (p *tickPool) worker(sc *imputeScratch) {
	for jb := range p.jobs {
		jb.err = profileSelectWindow(p.cfg, p.w, jb.refIdx, p.prof, sc, &jb.sel)
		p.wg.Done()
	}
}

// startPool spins up the persistent workers. Worker scratch is fully
// allocated before the first goroutine starts and never grows afterwards,
// so the per-worker scratch pointers stay stable. The scratch backing array
// and the pool are referenced by the workers, but the *Engine itself is
// not, so an abandoned engine stays collectable — and its registered
// cleanup then stops the pool.
func (e *Engine) startPool() {
	nw := e.cfg.Workers
	if len(e.workerScratch) < nw {
		e.workerScratch = make([]imputeScratch, nw)
	}
	p := &tickPool{cfg: e.cfg, w: e.w, prof: e.prof, jobs: make(chan *tickJob, nw)}
	e.pool = p
	for k := 0; k < nw; k++ {
		go p.worker(&e.workerScratch[k])
	}
	runtime.AddCleanup(e, func(p *tickPool) { p.stop() }, p)
}

// dispatch hands the first n resolved jobs to the pool (starting it on
// first use) and blocks until every job's selection slot is filled. The
// happens-before edges of the channel sends publish the job contents to the
// workers; wg.Wait publishes the selections back.
//
// poolMu is held across the sends so a concurrent Close cannot close the
// job channel mid-dispatch; a Close that arrives first simply makes this
// dispatch start a fresh pool, and one that arrives after the sends lets
// the workers drain the already-queued jobs before they exit (stop only
// closes the channel — buffered jobs are still received and completed, so
// wg.Wait always returns).
func (e *Engine) dispatch(n int) {
	e.poolMu.Lock()
	if e.pool == nil {
		e.startPool()
	}
	p := e.pool
	p.wg.Add(n)
	for j := 0; j < n; j++ {
		p.jobs <- &e.jobs[j]
	}
	e.poolMu.Unlock()
	p.wg.Wait()
}

// Close stops the engine's persistent worker pool, if one was started. The
// engine remains usable afterwards (a later parallel tick starts a fresh
// pool). Close is optional — an abandoned engine's pool is stopped by a GC
// cleanup — but deterministic: call it when discarding an engine whose
// Config.Workers exceeded 1 to release the worker goroutines immediately.
//
// Close is idempotent and safe to call concurrently with itself and with an
// in-flight Tick: the tick's already-dispatched jobs still complete (the
// workers drain the closed channel), and its next parallel tick transparently
// starts a fresh pool.
func (e *Engine) Close() {
	e.poolMu.Lock()
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	e.poolMu.Unlock()
}
