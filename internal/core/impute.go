package core

import (
	"math"

	"tkcm/internal/window"
)

// Result describes one imputation: the recovered value, the chosen anchors,
// and the pattern-determining diagnostics of Sec. 5.3.
type Result struct {
	// Value is the imputed value sˆ(tn) (Def. 4).
	Value float64
	// Anchors are the window-local indices (0 = oldest retained tick) of the
	// k most similar anchor points A, ascending.
	Anchors []int
	// AnchorValues are the values of s at the anchors, aligned with Anchors.
	AnchorValues []float64
	// Dissimilarities are δ(P(t), P(tn)) for each chosen anchor t.
	Dissimilarities []float64
	// SumDissimilarity is Σ δ over the chosen anchors — the quantity the DP
	// minimizes (Def. 3 condition 3).
	SumDissimilarity float64
	// Epsilon is max_{t,t'∈A} |s(t) − s(t')|, the ε of Def. 5. Small ε means
	// the reference series pattern-determine s at tn.
	Epsilon float64
}

// PatternDetermining reports whether the imputation satisfied Def. 5 for the
// given tolerance: every pair of anchor values of s lies within eps.
func (r *Result) PatternDetermining(eps float64) bool { return r.Epsilon <= eps }

// Impute recovers the missing value of series s at the last tick of the
// supplied histories. s and every refs[i] hold the retained window (oldest
// first, equal lengths, last element = current time tn); s's last element is
// ignored (it is the missing value being recovered). The reference histories
// must be complete over the window — under continuous imputation older ticks
// were themselves imputed on arrival.
//
// This is the slice-based form used by the experiment harness; ImputeWindow
// is the streaming ring-buffer form of Algorithm 1.
func Impute(cfg Config, s []float64, refs [][]float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, ErrInsufficientHistory
	}
	l, k := cfg.PatternLength, cfg.K
	s, refs, filled := alignNewest(s, refs)
	nCand := filled - 2*l + 1
	if nCand < 1 || nCand < (k-1)*l+1 && cfg.Selection != SelectOverlapping || nCand < k && cfg.Selection == SelectOverlapping {
		return nil, ErrInsufficientHistory
	}
	// Query pattern must be complete in every reference series.
	for _, r := range refs {
		for x := filled - l; x < filled; x++ {
			if math.IsNaN(r[x]) {
				return nil, ErrMissingInQueryPattern
			}
		}
	}
	d := cfg.sliceProfiler().Profile(refs, l, cfg.Norm, nil)
	return finishImputation(cfg, d, func(candidate int) float64 {
		return s[candidate+l-1]
	}, nil)
}

// ImputeWindow recovers the missing value of the stream at index sIdx of w at
// the current time tn, reading reference histories from the ring buffers of
// the streams at refIdx, and stores the imputed value back into the window
// (Algorithm 1 line 26). It mirrors the paper's Algorithm 1 on ring buffers.
// The dissimilarity profile is computed by the profiler Config.Profiler
// selects (the incremental profiler has no state here and degrades to FFT).
func ImputeWindow(cfg Config, w *window.Window, sIdx int, refIdx []int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return imputeWindowWith(cfg, w, sIdx, refIdx, cfg.sliceProfiler(), nil)
}

// imputeScratch holds the per-caller reusable buffers of imputeWindowWith:
// one snapshot per reference slot plus profile storage. The zero value is
// ready to use; buffers grow on first use and are reused afterwards.
type imputeScratch struct {
	refs [][]float64
	prof []float64
	dp   []float64
}

// profileDst returns a length-n profile buffer backed by the scratch.
func (sc *imputeScratch) profileDst(n int) []float64 {
	if cap(sc.prof) < n {
		sc.prof = make([]float64, n)
	}
	sc.prof = sc.prof[:n]
	return sc.prof
}

// imputeWindowWith is the scratch-reusing core of ImputeWindow, shared by the
// standalone call (sc == nil, fresh buffers) and the engine's hot path. A
// stateful IncrementalProfiler assembles the profile straight from its
// maintained aggregates; every other profiler runs over reference snapshots
// materialized into the scratch (plain slices, no per-element ring calls).
func imputeWindowWith(cfg Config, w *window.Window, sIdx int, refIdx []int, prof Profiler, sc *imputeScratch) (*Result, error) {
	l, k := cfg.PatternLength, cfg.K
	filled := w.Filled()
	nCand := filled - 2*l + 1
	if nCand < 1 || nCand < (k-1)*l+1 && cfg.Selection != SelectOverlapping || nCand < k && cfg.Selection == SelectOverlapping {
		return nil, ErrInsufficientHistory
	}
	if sc == nil {
		sc = &imputeScratch{}
	}
	var d []float64
	if ip, ok := prof.(*IncrementalProfiler); ok && cfg.Norm == L2 {
		// Engine fast path: the aggregates already cover this tick, and the
		// continuous-imputation invariant keeps the retained window complete,
		// so no query-completeness scan is needed.
		d = ip.ProfileWindow(refIdx, sc.profileDst(nCand))
	} else {
		for len(sc.refs) < len(refIdx) {
			sc.refs = append(sc.refs, nil)
		}
		refs := sc.refs[:len(refIdx)]
		for x, ri := range refIdx {
			sc.refs[x] = w.SnapshotInto(ri, sc.refs[x])
			refs[x] = sc.refs[x]
			// Query pattern completeness check (Algorithm 1 precondition).
			for _, v := range refs[x][filled-l:] {
				if math.IsNaN(v) {
					return nil, ErrMissingInQueryPattern
				}
			}
		}
		d = prof.Profile(refs, l, cfg.Norm, sc.profileDst(nCand))
	}
	res, err := finishImputation(cfg, d, func(candidate int) float64 {
		return w.Stream(sIdx).At(candidate + l - 1)
	}, &sc.dp)
	if err != nil {
		return nil, err
	}
	w.SetCurrent(sIdx, res.Value)
	return res, nil
}

// finishImputation runs anchor selection on the dissimilarity profile and
// aggregates the anchor values of s (Def. 4, optionally similarity-weighted).
// valueAt returns s's value for a candidate index (anchor tick = candidate +
// l − 1).
func finishImputation(cfg Config, d []float64, valueAt func(candidate int) float64, dpScratch *[]float64) (*Result, error) {
	idx, sum, ok := selectAnchors(d, cfg.K, cfg.PatternLength, cfg.Selection, dpScratch)
	if !ok {
		return nil, ErrInsufficientHistory
	}
	res := &Result{
		Anchors:          make([]int, 0, len(idx)),
		AnchorValues:     make([]float64, 0, len(idx)),
		Dissimilarities:  make([]float64, 0, len(idx)),
		SumDissimilarity: sum,
	}
	var (
		plain          float64
		weighted, wsum float64
		n              int
	)
	for _, j := range idx {
		v := valueAt(j)
		res.Anchors = append(res.Anchors, j+cfg.PatternLength-1)
		res.AnchorValues = append(res.AnchorValues, v)
		res.Dissimilarities = append(res.Dissimilarities, d[j])
		if math.IsNaN(v) {
			// The anchor value of s itself is missing (can happen offline
			// when s has other gaps); skip it in the aggregate.
			continue
		}
		plain += v
		w := 1.0 / (d[j] + 1e-9)
		weighted += w * v
		wsum += w
		n++
	}
	if n == 0 {
		return nil, ErrInsufficientHistory
	}
	if cfg.WeightedMean {
		res.Value = weighted / wsum
	} else {
		res.Value = plain / float64(n)
	}
	// ε of Def. 5: max pairwise spread of the (non-missing) anchor values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.AnchorValues {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	res.Epsilon = hi - lo
	return res, nil
}
