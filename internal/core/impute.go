package core

import (
	"math"

	"tkcm/internal/window"
)

// Result describes one imputation: the recovered value, the chosen anchors,
// and the pattern-determining diagnostics of Sec. 5.3.
type Result struct {
	// Value is the imputed value sˆ(tn) (Def. 4).
	Value float64
	// Anchors are the window-local indices (0 = oldest retained tick) of the
	// k most similar anchor points A, ascending.
	Anchors []int
	// AnchorValues are the values of s at the anchors, aligned with Anchors.
	AnchorValues []float64
	// Dissimilarities are δ(P(t), P(tn)) for each chosen anchor t.
	Dissimilarities []float64
	// SumDissimilarity is Σ δ over the chosen anchors — the quantity the DP
	// minimizes (Def. 3 condition 3).
	SumDissimilarity float64
	// Epsilon is max_{t,t'∈A} |s(t) − s(t')|, the ε of Def. 5. Small ε means
	// the reference series pattern-determine s at tn.
	Epsilon float64
}

// PatternDetermining reports whether the imputation satisfied Def. 5 for the
// given tolerance: every pair of anchor values of s lies within eps.
func (r *Result) PatternDetermining(eps float64) bool { return r.Epsilon <= eps }

// Impute recovers the missing value of series s at the last tick of the
// supplied histories. s and every refs[i] hold the retained window (oldest
// first, equal lengths, last element = current time tn); s's last element is
// ignored (it is the missing value being recovered). The reference histories
// must be complete over the window — under continuous imputation older ticks
// were themselves imputed on arrival.
//
// This is the slice-based form used by the experiment harness; ImputeWindow
// is the streaming ring-buffer form of Algorithm 1.
func Impute(cfg Config, s []float64, refs [][]float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, ErrInsufficientHistory
	}
	l, k := cfg.PatternLength, cfg.K
	s, refs, filled := alignNewest(s, refs)
	nCand := filled - 2*l + 1
	if nCand < 1 || nCand < (k-1)*l+1 && cfg.Selection != SelectOverlapping || nCand < k && cfg.Selection == SelectOverlapping {
		return nil, ErrInsufficientHistory
	}
	// Query pattern must be complete in every reference series.
	for _, r := range refs {
		for x := filled - l; x < filled; x++ {
			if math.IsNaN(r[x]) {
				return nil, ErrMissingInQueryPattern
			}
		}
	}
	d := cfg.sliceProfiler().Profile(refs, l, cfg.Norm, nil)
	var sel anchorSelection
	if !sel.fill(cfg, d, nil) {
		return nil, ErrInsufficientHistory
	}
	_, res, err := aggregateAnchors(cfg, &sel, func(candidate int) float64 {
		return s[candidate+l-1]
	}, false)
	return res, err
}

// ImputeWindow recovers the missing value of the stream at index sIdx of w at
// the current time tn, reading reference histories from the ring buffers of
// the streams at refIdx, and stores the imputed value back into the window
// (Algorithm 1 line 26). It mirrors the paper's Algorithm 1 on ring buffers.
// The dissimilarity profile is computed by the profiler Config.Profiler
// selects (the incremental profiler has no state here and degrades to FFT).
// It always builds full diagnostics; Config.SkipDiagnostics only applies to
// the engine tick path.
func ImputeWindow(cfg Config, w *window.Window, sIdx int, refIdx []int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	_, res, err := imputeWindowWith(cfg, w, sIdx, refIdx, cfg.sliceProfiler(), nil, false)
	return res, err
}

// imputeScratch holds the per-caller reusable buffers of imputeWindowWith:
// one snapshot per reference slot, profile storage, and the anchor-selection
// scratch. The zero value is ready to use; buffers grow on first use and are
// reused afterwards.
type imputeScratch struct {
	refs [][]float64
	prof []float64
	sel  selectScratch
}

// profileDst returns a length-n profile buffer backed by the scratch.
func (sc *imputeScratch) profileDst(n int) []float64 {
	if cap(sc.prof) < n {
		sc.prof = make([]float64, n)
	}
	sc.prof = sc.prof[:n]
	return sc.prof
}

// anchorSelection is the target-independent outcome of pattern extraction
// plus anchor selection for one reference set: the chosen candidate indices,
// their dissimilarities, and the minimized sum. The profile depends only on
// the reference histories, never on the imputed stream, so one selection
// serves every missing stream of a tick that shares the reference set —
// each remaining target only aggregates its own k anchor values. Storage is
// caller-owned and reused via fill.
type anchorSelection struct {
	idx   []int
	dvals []float64
	sum   float64
}

// fill runs anchor selection on the dissimilarity profile d and stores the
// outcome, reusing the selection's storage. It reports whether a feasible
// selection exists.
func (sel *anchorSelection) fill(cfg Config, d []float64, sc *selectScratch) bool {
	idx, sum, ok := selectAnchors(d, cfg.K, cfg.PatternLength, cfg.Selection, sc)
	if !ok {
		return false
	}
	sel.idx = append(sel.idx[:0], idx...)
	sel.dvals = sel.dvals[:0]
	for _, j := range idx {
		sel.dvals = append(sel.dvals, d[j])
	}
	sel.sum = sum
	return true
}

// profileSelectWindow computes the dissimilarity profile over the reference
// streams refIdx of w and runs anchor selection, storing the outcome into
// sel (reusing its storage). It is the target-independent half of Algorithm
// 1; aggregateWindow finishes an imputation from it. A stateful
// IncrementalProfiler assembles the profile straight from its maintained
// aggregates (catching the referenced streams up on demand); every other
// profiler runs over reference snapshots materialized into the scratch
// (plain slices, no per-element ring calls).
func profileSelectWindow(cfg Config, w *window.Window, refIdx []int, prof Profiler, sc *imputeScratch, sel *anchorSelection) error {
	l, k := cfg.PatternLength, cfg.K
	filled := w.Filled()
	nCand := filled - 2*l + 1
	if nCand < 1 || nCand < (k-1)*l+1 && cfg.Selection != SelectOverlapping || nCand < k && cfg.Selection == SelectOverlapping {
		return ErrInsufficientHistory
	}
	var d []float64
	if ip, ok := prof.(*IncrementalProfiler); ok && cfg.Norm == L2 {
		// Engine fast path: the aggregates already cover this tick, and the
		// continuous-imputation invariant keeps the retained window complete,
		// so no query-completeness scan is needed.
		d = ip.ProfileWindow(refIdx, sc.profileDst(nCand))
	} else {
		for len(sc.refs) < len(refIdx) {
			sc.refs = append(sc.refs, nil)
		}
		refs := sc.refs[:len(refIdx)]
		for x, ri := range refIdx {
			sc.refs[x] = w.SnapshotInto(ri, sc.refs[x])
			refs[x] = sc.refs[x]
			// Query pattern completeness check (Algorithm 1 precondition).
			for _, v := range refs[x][filled-l:] {
				if math.IsNaN(v) {
					return ErrMissingInQueryPattern
				}
			}
		}
		d = prof.Profile(refs, l, cfg.Norm, sc.profileDst(nCand))
	}
	if !sel.fill(cfg, d, &sc.sel) {
		return ErrInsufficientHistory
	}
	return nil
}

// aggregateWindow finishes one imputation from a prior selection: it
// averages the target stream's values at the selected anchors (Def. 4,
// optionally similarity-weighted) and stores the imputed value back into
// the window (Algorithm 1 line 26). Diagnostics are skipped (nil Result)
// when skipDiag is set.
func aggregateWindow(cfg Config, w *window.Window, sIdx int, sel *anchorSelection, skipDiag bool) (float64, *Result, error) {
	val, res, err := aggregateAnchors(cfg, sel, func(candidate int) float64 {
		return w.Stream(sIdx).At(candidate + cfg.PatternLength - 1)
	}, skipDiag)
	if err != nil {
		return 0, nil, err
	}
	w.SetCurrent(sIdx, val)
	return val, res, nil
}

// imputeWindowWith runs the full imputation — profile, selection,
// aggregation — for one stream, as the one-shot ImputeWindow path does.
func imputeWindowWith(cfg Config, w *window.Window, sIdx int, refIdx []int, prof Profiler, sc *imputeScratch, skipDiag bool) (float64, *Result, error) {
	if sc == nil {
		sc = &imputeScratch{}
	}
	var sel anchorSelection
	if err := profileSelectWindow(cfg, w, refIdx, prof, sc, &sel); err != nil {
		return 0, nil, err
	}
	return aggregateWindow(cfg, w, sIdx, &sel, skipDiag)
}

// aggregateAnchors computes the imputed value from the target's values at
// the selected anchors. valueAt returns s's value for a candidate index
// (anchor tick = candidate + l − 1). The imputed value is always returned;
// the allocated *Result with its diagnostic slices is omitted (nil) when
// skipDiag is set, keeping the throughput path allocation-free.
func aggregateAnchors(cfg Config, sel *anchorSelection, valueAt func(candidate int) float64, skipDiag bool) (float64, *Result, error) {
	var res *Result
	if !skipDiag {
		res = &Result{
			Anchors:          make([]int, 0, len(sel.idx)),
			AnchorValues:     make([]float64, 0, len(sel.idx)),
			Dissimilarities:  make([]float64, 0, len(sel.idx)),
			SumDissimilarity: sel.sum,
		}
	}
	var (
		plain          float64
		weighted, wsum float64
		n              int
	)
	lo, hi := math.Inf(1), math.Inf(-1)
	for x, j := range sel.idx {
		v := valueAt(j)
		dj := sel.dvals[x]
		if res != nil {
			res.Anchors = append(res.Anchors, j+cfg.PatternLength-1)
			res.AnchorValues = append(res.AnchorValues, v)
			res.Dissimilarities = append(res.Dissimilarities, dj)
		}
		if math.IsNaN(v) {
			// The anchor value of s itself is missing (can happen offline
			// when s has other gaps); skip it in the aggregate.
			continue
		}
		plain += v
		w := 1.0 / (dj + 1e-9)
		weighted += w * v
		wsum += w
		n++
		// ε of Def. 5: max pairwise spread of the (non-missing) anchor
		// values.
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if n == 0 {
		return 0, nil, ErrInsufficientHistory
	}
	var val float64
	if cfg.WeightedMean {
		val = weighted / wsum
	} else {
		val = plain / float64(n)
	}
	if res != nil {
		res.Value = val
		res.Epsilon = hi - lo
	}
	return val, res, nil
}
