package core

import "math"

// Pattern is the d×l matrix of Def. 1: row i holds the l consecutive values
// of reference series i ending at the anchor time. Values[i][j] is
// rᵢ(t_anchor − l + 1 + j), i.e. columns are in chronological order with the
// anchor value in the last column.
type Pattern struct {
	// Anchor is the window-local index of the anchor tick (0 = oldest
	// retained tick).
	Anchor int
	// Values holds one row per reference series.
	Values [][]float64
}

// Dissimilarity computes δ(p, q) between two equally shaped patterns under
// the given norm. For L2 this is Def. 2: the square root of the sum of
// squared element-wise differences across all d rows and l columns.
func Dissimilarity(p, q *Pattern, norm Norm) float64 {
	switch norm {
	case L1:
		sum := 0.0
		for i := range p.Values {
			pi, qi := p.Values[i], q.Values[i]
			for j := range pi {
				sum += math.Abs(pi[j] - qi[j])
			}
		}
		return sum
	case LInf:
		max := 0.0
		for i := range p.Values {
			pi, qi := p.Values[i], q.Values[i]
			for j := range pi {
				if d := math.Abs(pi[j] - qi[j]); d > max {
					max = d
				}
			}
		}
		return max
	default: // L2
		sum := 0.0
		for i := range p.Values {
			pi, qi := p.Values[i], q.Values[i]
			for j := range pi {
				d := pi[j] - qi[j]
				sum += d * d
			}
		}
		return math.Sqrt(sum)
	}
}

// ExtractPattern builds the pattern of length l anchored at window-local
// index anchor over the given reference histories. refs[i] is the full
// retained history (oldest first) of reference series i; all refs must be at
// least anchor+1 long. The returned pattern owns its storage.
func ExtractPattern(refs [][]float64, anchor, l int) *Pattern {
	p := &Pattern{Anchor: anchor, Values: make([][]float64, len(refs))}
	for i, r := range refs {
		row := make([]float64, l)
		copy(row, r[anchor-l+1:anchor+1])
		p.Values[i] = row
	}
	return p
}

// alignNewest truncates s and every reference history to the newest `filled`
// ticks, where filled is the shortest length among them: histories of
// unequal length align at the newest tick (the last element is always the
// current time tn). The returned refs never alias the caller's slice header
// storage unless no trimming was needed.
func alignNewest(s []float64, refs [][]float64) ([]float64, [][]float64, int) {
	filled := len(s)
	for _, r := range refs {
		if len(r) < filled {
			filled = len(r)
		}
	}
	s = s[len(s)-filled:]
	for _, r := range refs {
		if len(r) != filled {
			t := make([][]float64, len(refs))
			for i, ri := range refs {
				t[i] = ri[len(ri)-filled:]
			}
			refs = t
			break
		}
	}
	return s, refs, filled
}

// trimToNewest aligns reference histories of unequal length at the newest
// tick (the current time is always the last element), returning end-anchored
// views of length min over the inputs. Equal-length inputs are returned
// unchanged with no allocation.
func trimToNewest(refs [][]float64) ([][]float64, int) {
	filled := len(refs[0])
	equal := true
	for _, r := range refs[1:] {
		if len(r) != filled {
			equal = false
			if len(r) < filled {
				filled = len(r)
			}
		}
	}
	if equal {
		return refs, filled
	}
	trimmed := make([][]float64, len(refs))
	for i, r := range refs {
		trimmed[i] = r[len(r)-filled:]
	}
	return trimmed, filled
}

// dissimilarityProfile computes D[j] for every candidate anchor of the
// window (Algorithm 1, lines 1–7), writing into dst (allocated if nil):
// dst[j] = δ(P(anchor_j), P(tn)) for j = 0..n-1, where anchor_j is
// window-local index l-1+j and the query pattern is anchored at index n-1 of
// a window with filled ticks. refs[i] is the retained history of reference
// series i (oldest first, length = filled window ticks); unequal lengths are
// aligned at the newest tick. The number of candidates is filled − 2l + 1:
// the first l−1 ticks cannot anchor a full pattern and the last l ticks
// would overlap the query pattern (Def. 3 condition 1).
//
// The computation follows the paper exactly: per anchor, sum squared
// differences over all d reference rows and l columns. For the alternate
// norms the inner aggregation changes accordingly.
func dissimilarityProfile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	refs, filled := trimToNewest(refs)
	nCand := filled - 2*l + 1
	if nCand < 0 {
		nCand = 0
	}
	if dst == nil {
		dst = make([]float64, nCand)
	}
	dst = dst[:nCand]
	qStart := filled - l // query pattern occupies [filled-l, filled-1]
	for j := 0; j < nCand; j++ {
		aStart := j // candidate pattern occupies [j, j+l-1], anchor at j+l-1
		switch norm {
		case L1:
			sum := 0.0
			for _, r := range refs {
				for x := 0; x < l; x++ {
					sum += math.Abs(r[aStart+x] - r[qStart+x])
				}
			}
			dst[j] = sum
		case LInf:
			max := 0.0
			for _, r := range refs {
				for x := 0; x < l; x++ {
					if d := math.Abs(r[aStart+x] - r[qStart+x]); d > max {
						max = d
					}
				}
			}
			dst[j] = max
		default:
			sum := 0.0
			for _, r := range refs {
				cand := r[aStart : aStart+l]
				query := r[qStart : qStart+l]
				for x := 0; x < l; x++ {
					d := cand[x] - query[x]
					sum += d * d
				}
			}
			dst[j] = math.Sqrt(sum)
		}
	}
	return dst
}
