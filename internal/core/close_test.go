package core

import (
	"math"
	"sync"
	"testing"
)

// TestCloseIdempotent: calling Close repeatedly, including before any pool
// ever started, must be a no-op.
func TestCloseIdempotent(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 16, Workers: 4}
	eng, err := NewEngine(cfg, []string{"a", "b", "c", "d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
	row := []float64{1, 2, 3, 4}
	if _, _, err := eng.Tick(row); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
}

// TestCloseConcurrentWithTick is the regression test for the Close/Tick
// race: one goroutine drives ticks with several streams missing (forcing
// the parallel dispatch path to start and use the pool) while others
// hammer Close. Run under -race this exercises the poolMu discipline; the
// engine must keep producing correct completed rows throughout, restarting
// its pool transparently after every Close.
func TestCloseConcurrentWithTick(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 24, Workers: 3}
	eng, err := NewEngine(cfg, []string{"a", "b", "c", "d", "e", "f"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const ticks = 400
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					eng.Close()
				}
			}
		}()
	}

	row := make([]float64, 6)
	for tk := 0; tk < ticks; tk++ {
		for i := range row {
			row[i] = 5 + math.Sin(float64(tk)/4+float64(i))
		}
		if tk > 40 && tk%3 == 0 {
			// Three missing streams with disjoint reference sets → several
			// parallel jobs per tick.
			row[0] = math.NaN()
			row[2] = math.NaN()
			row[4] = math.NaN()
		}
		out, _, err := eng.Tick(row)
		if err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
		for i, v := range out {
			if math.IsNaN(v) {
				t.Fatalf("tick %d: stream %d left missing", tk, i)
			}
		}
	}
	close(stop)
	wg.Wait()

	if eng.Stats.Imputations == 0 {
		t.Fatal("parallel imputation path never ran")
	}
}
