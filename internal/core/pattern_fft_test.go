package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFFTProfileMatchesNaive: the FFT-based profile must agree with the
// naive L2 profile within floating-point tolerance on random inputs.
func TestFFTProfileMatchesNaive(t *testing.T) {
	f := func(seed int64, lRaw, nRaw uint8) bool {
		n := int(nRaw)%150 + 20
		l := int(lRaw)%(n/3) + 1
		refs := randomRefs(seed, 3, n)
		naive := dissimilarityProfile(refs, l, L2, nil)
		fast := dissimilarityProfileFFT(refs, l, nil)
		if len(naive) != len(fast) {
			return false
		}
		for j := range naive {
			// Absolute tolerance scaled by the magnitude: FFT rounding
			// grows with the window energy.
			tol := 1e-6 * (1 + naive[j])
			if math.Abs(naive[j]-fast[j]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFFTProfileOnRunningExample pins the FFT path on the Table 2 data.
func TestFFTProfileOnRunningExample(t *testing.T) {
	refs := [][]float64{table2R1, table2R2}
	naive := dissimilarityProfile(refs, 3, L2, nil)
	fast := dissimilarityProfileFFT(refs, 3, nil)
	for j := range naive {
		if math.Abs(naive[j]-fast[j]) > 1e-9 {
			t.Fatalf("profile[%d]: naive %v vs fft %v", j, naive[j], fast[j])
		}
	}
}

// TestImputeFastExtraction: the public Impute with FastExtraction produces
// the same value as the naive path on the running example.
func TestImputeFastExtraction(t *testing.T) {
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	cfg := table2Config()
	plain, err := Impute(cfg, s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.FastExtraction = true
	fast, err := Impute(cfg, s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Value-fast.Value) > 1e-9 {
		t.Fatalf("fast %v vs plain %v", fast.Value, plain.Value)
	}
}

// TestImputeFastExtractionRandom: on random windows the fast path's imputed
// value stays within tolerance of the naive path (exact tie flips may pick
// different anchor sets with near-identical sums, so compare the sums, not
// the anchor indices).
func TestImputeFastExtractionRandom(t *testing.T) {
	f := func(seed int64) bool {
		refs := randomRefs(seed, 2, 90)
		s := randomRefs(seed^0x99, 1, 90)[0]
		s[89] = math.NaN()
		cfg := Config{K: 3, PatternLength: 5, D: 2, WindowLength: 90, Norm: L2}
		plain, err1 := Impute(cfg, s, refs)
		cfg.FastExtraction = true
		fast, err2 := Impute(cfg, s, refs)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(plain.SumDissimilarity-fast.SumDissimilarity) < 1e-5*(1+plain.SumDissimilarity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
