// Package core implements Top-k Case Matching (TKCM), the paper's primary
// contribution: continuous imputation of missing values in streams of
// pattern-determining time series.
//
// To impute a missing value s(tn), TKCM
//
//  1. extracts the query pattern P(tn) — the last l values of each of the d
//     reference time series (Def. 1),
//  2. computes the dissimilarity of every candidate pattern in the streaming
//     window to P(tn) (Def. 2),
//  3. selects the k most similar non-overlapping anchor points via dynamic
//     programming (Def. 3, Eq. 5), and
//  4. imputes the missing value as the mean of s at those anchors (Def. 4).
//
// The package exposes both a slice-based imputation primitive (Impute) and a
// ring-buffer streaming form mirroring the paper's Algorithm 1
// (ImputeWindow), plus diagnostics for the pattern-determining property of
// Sec. 5.3 and ablation variants (greedy selection, overlapping anchors,
// alternative norms, weighted means) referenced by DESIGN.md.
package core

import (
	"errors"
	"fmt"
)

// Norm selects the dissimilarity aggregation between two patterns. The paper
// uses the L2 norm (Def. 2); L1 and L∞ are the Sec. 8 future-work
// alternatives, implemented here for the ablation benches.
type Norm int

const (
	// L2 is the Euclidean pattern dissimilarity of Def. 2 (paper default).
	L2 Norm = iota
	// L1 sums absolute coordinate differences.
	L1
	// LInf takes the maximum absolute coordinate difference.
	LInf
)

// String returns the conventional name of the norm.
func (n Norm) String() string {
	switch n {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case LInf:
		return "LInf"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// Selection chooses how the k anchors are picked from the dissimilarity
// profile.
type Selection int

const (
	// SelectDP is the paper's dynamic program (Eq. 5): the k non-overlapping
	// patterns minimizing the sum of dissimilarities.
	SelectDP Selection = iota
	// SelectGreedy sorts anchors by dissimilarity and keeps the first k that
	// do not overlap. Sec. 6.1 shows this fails to minimize the sum; it is
	// retained as an ablation.
	SelectGreedy
	// SelectOverlapping picks the k smallest dissimilarities with no
	// non-overlap constraint. Sec. 4.1 argues this collapses onto near
	// duplicates; retained as an ablation.
	SelectOverlapping
)

// String returns a short name for the selection strategy.
func (s Selection) String() string {
	switch s {
	case SelectDP:
		return "dp"
	case SelectGreedy:
		return "greedy"
	case SelectOverlapping:
		return "overlapping"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Config holds TKCM's parameters, named exactly as in Table 1.
type Config struct {
	// K is the number of anchor points (paper default 5, Sec. 7.2).
	K int
	// L is the pattern length l (paper default 72 ≙ 6h at 5-min sampling).
	PatternLength int
	// D is the number of reference time series consulted (paper default 3).
	D int
	// WindowLength is the streaming window length L (paper default 1 year =
	// 105120 ticks at 5-minute sampling).
	WindowLength int
	// Norm is the pattern dissimilarity norm (default L2, Def. 2).
	Norm Norm
	// Selection is the anchor selection strategy (default SelectDP).
	Selection Selection
	// WeightedMean, when true, weights each anchor value by the inverse of
	// its pattern dissimilarity instead of the plain mean of Def. 4
	// (Troyanskaya-style weighting discussed in Sec. 2).
	WeightedMean bool
	// Profiler selects the pattern-extraction strategy — the implementation
	// of the dissimilarity profile (Def. 2) that dominates TKCM's runtime
	// (Sec. 7.4 reports ~92%). ProfilerAuto (zero value) picks the
	// incremental profiler in the streaming engine and the naive loop for
	// one-shot slice imputations; see ProfilerKind for the full matrix.
	// Non-L2 norms always degrade to the naive loop, the only
	// implementation that supports them.
	Profiler ProfilerKind
	// Workers bounds the goroutines one Engine.Tick uses to impute missing
	// streams in parallel. 0 or 1 keeps the serial tick; values above 1
	// start a persistent worker pool on first use and fan imputeStream out
	// across the tick's missing streams (reference sets are resolved
	// serially first, so parallel ticks never use a value imputed in the
	// same tick as a reference — see Engine.Tick). Call Engine.Close to
	// stop the pool when discarding an engine.
	Workers int
	// EagerProfiler restores the maintain-every-stream-every-tick behavior
	// of the incremental profiler: aggregates of all streams are updated on
	// every tick (O(L) per stream per tick). The default (false) is
	// demand-driven: recording a tick is O(1) per stream and aggregates are
	// caught up only when a stream is consulted as a reference, so on wide
	// stream sets with sparse missingness untouched streams cost nothing.
	// Both modes produce identical imputations; the knob exists for
	// workloads where nearly every stream is referenced every tick and for
	// A/B measurement.
	EagerProfiler bool
	// Float32Profiles stores the incremental profiler's derived profile
	// aggregates — the per-stream contribution vectors summed into every
	// dissimilarity profile — as float32 instead of float64, halving the
	// memory traffic of the per-tick profile assembly loops. The maintained
	// diagonal accumulators and all imputation arithmetic (anchor selection,
	// Def. 4 aggregation) stay float64, so only the final per-candidate
	// rounding differs: rankings agree with the float64 engine within the
	// 1e-6 equivalence gate the tests enforce. The flag only affects the
	// streaming engine's incremental profiler (the default under L2);
	// stateless profilers and non-L2 norms ignore it. Snapshots record the
	// flag, and a snapshot taken in one precision refuses to restore into a
	// config expecting the other (RestoreEngineWithConfig).
	Float32Profiles bool
	// SkipDiagnostics skips allocating the per-imputation Result (anchors,
	// anchor values, dissimilarities, ε) on the engine tick path: Tick then
	// reports every imputed value in its completed row but leaves all
	// results entries nil. Throughput mode for callers that only consume
	// the imputed values. One-shot Impute/ImputeWindow calls always build
	// full diagnostics.
	SkipDiagnostics bool
	// FastExtraction computes the L2 dissimilarity profile via FFT
	// cross-correlation in O(d·L·log L) instead of the naive O(d·l·L) —
	// the Sec. 8 future-work optimization of the pattern extraction phase.
	//
	// Deprecated: FastExtraction is an alias for Profiler =
	// ProfilerFFT, honored only while Profiler is ProfilerAuto.
	FastExtraction bool
}

// DefaultConfig returns the calibrated defaults of Sec. 7.2: d = 3 reference
// series, k = 5 anchors, pattern length l = 72, window L = 1 year of 5-minute
// ticks.
func DefaultConfig() Config {
	return Config{
		K:             5,
		PatternLength: 72,
		D:             3,
		WindowLength:  105120,
		Norm:          L2,
		Selection:     SelectDP,
	}
}

// Bounds on configuration dimensions that size eager allocations. They keep
// Validate and the snapshot restore path symmetric: every engine that
// NewEngine accepts can be snapshotted and restored, and a crafted snapshot
// image cannot demand absurd allocations through a huge decoded Config.
// MaxWindowLength is ~160× the paper's two-year hourly window (105120) yet
// bounds one stream's ring at 128 MiB; no machine has 2^16 cores.
const (
	MaxWindowLength = 1 << 24
	MaxWorkers      = 1 << 16
)

// Validate reports the first violated constraint, or nil. The window must be
// long enough to contain the query pattern plus k non-overlapping candidate
// patterns: L ≥ (k+1)·l + (l-1) ⇒ candidates = L − 2l + 1 ≥ k·l − (l−1)
// would be the tight bound; we enforce the simpler sufficient condition from
// Def. 3 that at least k candidate anchors exist and k disjoint patterns fit.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", c.K)
	}
	if c.PatternLength <= 0 {
		return fmt.Errorf("core: pattern length l must be positive, got %d", c.PatternLength)
	}
	if c.D <= 0 {
		return fmt.Errorf("core: number of reference series d must be positive, got %d", c.D)
	}
	if c.WindowLength <= 0 {
		return fmt.Errorf("core: window length L must be positive, got %d", c.WindowLength)
	}
	if c.WindowLength > MaxWindowLength {
		return fmt.Errorf("core: window length L=%d exceeds the maximum %d", c.WindowLength, MaxWindowLength)
	}
	candidates := c.WindowLength - 2*c.PatternLength + 1
	if candidates < 1 {
		return fmt.Errorf("core: window length L=%d too short for pattern length l=%d (need L ≥ 2l)", c.WindowLength, c.PatternLength)
	}
	// k non-overlapping patterns of length l need (k-1)·l + 1 candidate
	// anchor positions.
	if candidates < (c.K-1)*c.PatternLength+1 {
		return fmt.Errorf("core: window length L=%d cannot host k=%d non-overlapping patterns of length l=%d", c.WindowLength, c.K, c.PatternLength)
	}
	if c.Profiler < ProfilerAuto || c.Profiler > ProfilerIncremental {
		return fmt.Errorf("core: unknown profiler kind %d", int(c.Profiler))
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers must be non-negative, got %d", c.Workers)
	}
	if c.Workers > MaxWorkers {
		return fmt.Errorf("core: workers %d exceeds the maximum %d", c.Workers, MaxWorkers)
	}
	return nil
}

// ErrInsufficientHistory is returned when the streaming window does not yet
// retain enough complete ticks to form the query pattern and k candidates.
var ErrInsufficientHistory = errors.New("core: insufficient history in streaming window")

// ErrMissingInQueryPattern is returned when a reference series lacks a value
// inside the query pattern and no imputed value is available. Under
// continuous imputation this cannot happen (older ticks are always imputed
// first); it guards incorrect offline use.
var ErrMissingInQueryPattern = errors.New("core: missing value inside query pattern")
