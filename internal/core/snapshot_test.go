package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"sort"
	"strings"
	"testing"
)

// snapTestConfig is a small but non-trivial configuration for the snapshot
// tests: short window so it wraps, parallel workers, incremental profiler.
func snapTestConfig() Config {
	return Config{
		K:             3,
		PatternLength: 6,
		D:             2,
		WindowLength:  64,
		Norm:          L2,
		Selection:     SelectDP,
		Workers:       2,
	}
}

// snapTestRow synthesizes tick t of width streams: phase-shifted harmonics
// (TKCM's home turf), with streams {1, 3} missing on every 7th tick once the
// window has warmed.
func snapTestRow(t, width int, row []float64) []float64 {
	row = row[:0]
	for i := 0; i < width; i++ {
		ph := 2*math.Pi*float64(t)/48 + 0.9*float64(i)
		v := 10 + 3*math.Sin(ph) + 1.2*math.Sin(2*ph+0.3)
		if t > 80 && t%7 == 0 && (i == 1 || i == 3) {
			v = math.NaN()
		}
		row = append(row, v)
	}
	return row
}

func snapTestNames(width int) []string {
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	return names
}

// TestSnapshotRestoreRoundTrip drives an engine mid-stream, snapshots it,
// restores a second engine from the bytes, and checks that both produce
// imputations within 1e-9 of each other on the same subsequent rows — the
// kill-and-restore scenario of a checkpointing server.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const width, warm, tail = 5, 150, 120
	cfg := snapTestConfig()
	orig, err := NewEngine(cfg, snapTestNames(width), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	var row []float64
	for tk := 0; tk < warm; tk++ {
		row = snapTestRow(tk, width, row)
		if _, _, err := orig.Tick(row); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
	}

	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(bytes.Clone(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	if got, want := restored.Stats, orig.Stats; got != want {
		t.Errorf("restored stats %+v, want %+v", got, want)
	}
	if got, want := restored.Window().Tick(), orig.Window().Tick(); got != want {
		t.Errorf("restored window tick %d, want %d", got, want)
	}
	if got, want := restored.Window().Filled(), orig.Window().Filled(); got != want {
		t.Errorf("restored filled %d, want %d", got, want)
	}

	// The uninterrupted engine and the restored one must agree on every
	// subsequent completed row.
	var row2 []float64
	for tk := warm; tk < warm+tail; tk++ {
		row = snapTestRow(tk, width, row)
		row2 = append(row2[:0], row...)
		outA, _, errA := orig.Tick(row)
		outB, _, errB := restored.Tick(row2)
		if errA != nil || errB != nil {
			t.Fatalf("tick %d: orig err %v, restored err %v", tk, errA, errB)
		}
		for i := range outA {
			if d := math.Abs(outA[i] - outB[i]); !(d <= 1e-9) {
				t.Fatalf("tick %d stream %d: orig %v, restored %v (|Δ|=%g)", tk, i, outA[i], outB[i], d)
			}
		}
	}
	if orig.Stats.Imputations == 0 {
		t.Fatal("test exercised no imputations")
	}
	if restored.Stats != orig.Stats {
		t.Errorf("post-tail stats diverged: restored %+v, orig %+v", restored.Stats, orig.Stats)
	}
}

// TestSnapshotRestoreFloat32 is the float32 twin of the round-trip test: an
// engine running with Float32Profiles snapshotted mid-stream and restored
// must match the uninterrupted engine on every subsequent completed row. The
// restore must go through RestoreEngineWithConfig with a matching precision.
func TestSnapshotRestoreFloat32(t *testing.T) {
	const width, warm, tail = 5, 150, 120
	cfg := snapTestConfig()
	cfg.Float32Profiles = true
	orig, err := NewEngine(cfg, snapTestNames(width), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	var row []float64
	for tk := 0; tk < warm; tk++ {
		row = snapTestRow(tk, width, row)
		if _, _, err := orig.Tick(row); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngineWithConfig(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !restored.Config().Float32Profiles {
		t.Fatal("restored engine lost the Float32Profiles flag")
	}
	var row2 []float64
	for tk := warm; tk < warm+tail; tk++ {
		row = snapTestRow(tk, width, row)
		row2 = append(row2[:0], row...)
		outA, _, errA := orig.Tick(row)
		outB, _, errB := restored.Tick(row2)
		if errA != nil || errB != nil {
			t.Fatalf("tick %d: orig err %v, restored err %v", tk, errA, errB)
		}
		for i := range outA {
			if d := math.Abs(outA[i] - outB[i]); !(d <= 1e-6) {
				t.Fatalf("tick %d stream %d: orig %v, restored %v (|Δ|=%g)", tk, i, outA[i], outB[i], d)
			}
		}
	}
	if orig.Stats.Imputations == 0 {
		t.Fatal("test exercised no imputations")
	}
}

// TestRestoreRejectsPrecisionMismatch: an image snapshotted in one profile
// precision must refuse to restore into a config expecting the other, in both
// directions, with an error that names both precisions. Plain RestoreEngine
// (no expected config) accepts either image.
func TestRestoreRejectsPrecisionMismatch(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		cfg := snapTestConfig()
		cfg.Float32Profiles = f32
		e, err := NewEngine(cfg, snapTestNames(4), nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		e.Close()
		img := buf.Bytes()
		want := cfg
		want.Float32Profiles = !f32
		_, err = RestoreEngineWithConfig(bytes.NewReader(img), want)
		if err == nil {
			t.Fatalf("f32=%v image restored into mismatched config, want refusal", f32)
		}
		if !strings.Contains(err.Error(), "float32") || !strings.Contains(err.Error(), "float64") {
			t.Fatalf("f32=%v: error %q does not name both precisions", f32, err)
		}
		if _, err := RestoreEngineWithConfig(bytes.NewReader(img), cfg); err != nil {
			t.Fatalf("f32=%v: matching-config restore failed: %v", f32, err)
		}
		if _, err := RestoreEngine(bytes.NewReader(img)); err != nil {
			t.Fatalf("f32=%v: unconstrained restore failed: %v", f32, err)
		}
	}
}

// encodeLegacyImage hand-encodes the given engine as a version 1 or 2 image
// (the pre-v3 single-payload layout: config, names, refs, counters, last
// values, then the window values inlined, under one trailing CRC). It pins
// the legacy byte layout independently of the current encoder, so format
// drift that would orphan old checkpoints fails here.
func encodeLegacyImage(t testing.TB, e *Engine, version uint32) []byte {
	t.Helper()
	enc := &snapEncoder{}
	cfg := e.Config()
	enc.int(int64(cfg.K))
	enc.int(int64(cfg.PatternLength))
	enc.int(int64(cfg.D))
	enc.int(int64(cfg.WindowLength))
	enc.int(int64(cfg.Norm))
	enc.int(int64(cfg.Selection))
	enc.int(int64(cfg.Profiler))
	enc.int(int64(cfg.Workers))
	enc.bool(cfg.WeightedMean)
	enc.bool(cfg.EagerProfiler)
	enc.bool(cfg.SkipDiagnostics)
	enc.bool(cfg.FastExtraction)
	if version >= 2 {
		enc.bool(cfg.Float32Profiles)
	}
	names := e.Window().Names()
	enc.uint(uint64(len(names)))
	for _, n := range names {
		enc.str(n)
	}
	keys := make([]string, 0, len(e.refs))
	for k := range e.refs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.uint(uint64(len(keys)))
	for _, k := range keys {
		rs := e.refs[k]
		enc.str(k)
		enc.str(rs.Stream)
		enc.uint(uint64(len(rs.Candidates)))
		for _, c := range rs.Candidates {
			enc.str(c)
		}
	}
	enc.int(int64(e.tick))
	enc.int(int64(e.w.Tick()))
	enc.int(int64(e.Stats.Ticks))
	enc.int(int64(e.Stats.Imputations))
	enc.int(int64(e.Stats.ColdStartFills))
	enc.int(int64(e.Stats.ReferenceErrors))
	enc.int(int64(e.Stats.InsufficientHist))
	for _, v := range e.last {
		enc.float(v)
	}
	filled := e.w.Filled()
	enc.uint(uint64(filled))
	hist := make([]float64, filled)
	for i := 0; i < e.w.Width(); i++ {
		for _, v := range e.w.SnapshotInto(i, hist) {
			enc.float(v)
		}
	}
	payload := enc.buf.Bytes()
	img := make([]byte, 0, len(payload)+24)
	img = append(img, snapMagic...)
	img = binary.LittleEndian.AppendUint32(img, version)
	img = binary.LittleEndian.AppendUint64(img, uint64(len(payload)))
	img = append(img, payload...)
	img = binary.LittleEndian.AppendUint32(img, crc32.ChecksumIEEE(payload))
	return img
}

// TestRestoreAcceptsV1Image: a version-1 image (predating Float32Profiles)
// must still restore, with the flag defaulting to float64 precision.
func TestRestoreAcceptsV1Image(t *testing.T) {
	cfg := snapTestConfig()
	e, err := NewEngine(cfg, snapTestNames(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var row []float64
	for tk := 0; tk < 40; tk++ {
		row = snapTestRow(tk, 4, row)
		if _, _, err := e.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	v1 := encodeLegacyImage(t, e, 1)
	r, err := RestoreEngine(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	defer r.Close()
	if r.Config().Float32Profiles {
		t.Fatal("v1 image restored with Float32Profiles set")
	}
	if got, want := r.Seq(), e.Seq(); got != want {
		t.Fatalf("v1 restore seq %d, want %d", got, want)
	}
}

// TestSnapshotDeterministic: snapshotting the same engine twice must produce
// byte-identical images (reference sets are sorted, no timestamps).
func TestSnapshotDeterministic(t *testing.T) {
	cfg := snapTestConfig()
	e, err := NewEngine(cfg, snapTestNames(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var row []float64
	for tk := 0; tk < 100; tk++ {
		row = snapTestRow(tk, 5, row)
		if _, _, err := e.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	var a, b bytes.Buffer
	if err := e.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same engine differ")
	}
}

// TestSnapshotColdEngine round-trips an engine that has never ticked.
func TestSnapshotColdEngine(t *testing.T) {
	cfg := snapTestConfig()
	e, err := NewEngine(cfg, snapTestNames(4), map[string]ReferenceSet{
		"a": {Stream: "a", Candidates: []string{"b", "c", "d"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Window().Filled() != 0 {
		t.Fatalf("cold restore has %d filled ticks", r.Window().Filled())
	}
	if _, _, err := r.Tick([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsCorruption flips bytes across the image and expects every
// corruption to be caught (checksum or structural validation), never a panic
// or a silently wrong engine.
func TestRestoreRejectsCorruption(t *testing.T) {
	cfg := snapTestConfig()
	e, err := NewEngine(cfg, snapTestNames(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	var row []float64
	for tk := 0; tk < 90; tk++ {
		row = snapTestRow(tk, 4, row)
		if _, _, err := e.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	if _, err := RestoreEngine(bytes.NewReader(img[:len(img)/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	for _, off := range []int{0, 9, 15, 25, len(img) / 2, len(img) - 2} {
		cp := bytes.Clone(img)
		cp[off] ^= 0x5a
		if _, err := RestoreEngine(bytes.NewReader(cp)); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}
}

// wrapSnapImage frames a raw payload as a version-2 image (magic, version,
// length, CRC), for crafting hostile-but-checksum-valid images against the
// shared meta decoder; the v3-specific geometry attacks live in
// snapshot_v3_test.go.
func wrapSnapImage(payload []byte) []byte {
	img := make([]byte, 0, len(payload)+24)
	img = append(img, snapMagic...)
	img = binary.LittleEndian.AppendUint32(img, 2)
	img = binary.LittleEndian.AppendUint64(img, uint64(len(payload)))
	img = append(img, payload...)
	img = binary.LittleEndian.AppendUint32(img, crc32.ChecksumIEEE(payload))
	return img
}

// TestRestoreRejectsCraftedDimensions: a crafted image (valid CRC) claiming
// window dimensions far beyond its actual payload must fail with an error —
// never allocate from the claimed sizes, panic, or OOM.
func TestRestoreRejectsCraftedDimensions(t *testing.T) {
	// Case 1: implausible window length.
	enc := &snapEncoder{}
	cfg := snapTestConfig()
	cfg.WindowLength = 1 << 40
	enc.encodeConfig(cfg)
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("window length 2^40 accepted")
	}

	// Case 2: plausible config but a retained-window claim (4 × 2^20 floats)
	// that the byte-counted payload cannot possibly hold.
	enc = &snapEncoder{}
	cfg = snapTestConfig()
	cfg.WindowLength = 1 << 21
	enc.encodeConfig(cfg)
	enc.uint(4)
	for _, n := range []string{"a", "b", "c", "d"} {
		enc.str(n)
	}
	enc.uint(0)              // no reference sets
	enc.int(1 << 20)         // engine tick
	enc.int(1<<20 - 1)       // window tick
	for i := 0; i < 5; i++ { // stats
		enc.int(0)
	}
	for i := 0; i < 4; i++ { // last values
		enc.float(0)
	}
	enc.uint(1 << 20) // filled: claims 32 MiB of floats that are not there
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("retained-window claim beyond payload accepted")
	}
}

// TestRestoreRejectsCraftedCounts: CRC-valid images with hostile count and
// string-length fields must fail with an error — never panic on a negative
// map-size hint or an overflowed slice bound, never pre-allocate toward OOM.
func TestRestoreRejectsCraftedCounts(t *testing.T) {
	// upToNames encodes a valid config and a one-stream name table, leaving
	// the decoder positioned at the reference-set count.
	upToNames := func() *snapEncoder {
		enc := &snapEncoder{}
		enc.encodeConfig(snapTestConfig())
		enc.uint(1)
		enc.str("a")
		return enc
	}

	// Reference-set count with the top bit set: int(nRefs) goes negative and
	// a naive make(map, nRefs) panics with "size out of range".
	enc := upToNames()
	enc.uint(1 << 63)
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("reference-set count 2^63 accepted")
	}

	// Huge-but-positive count: must fail the plausibility bound instead of
	// pre-allocating map buckets for it.
	enc = upToNames()
	enc.uint(1 << 40)
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("reference-set count 2^40 accepted")
	}

	// Even a modest claimed count must be backed by payload bytes (each
	// reference set costs at least 3), so allocation stays proportional to
	// the image actually sent.
	enc = upToNames()
	enc.uint(100000) // nothing behind it
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("reference-set count beyond payload bytes accepted")
	}

	// String length of MaxInt64: off+n overflows int, slipping a naive
	// "off+n > len" check into a panicking slice expression.
	enc = &snapEncoder{}
	enc.encodeConfig(snapTestConfig())
	enc.uint(1)
	enc.uint(math.MaxInt64) // claimed name length with no bytes behind it
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("string length MaxInt64 accepted")
	}

	// String length with the top bit set: int(n) goes negative.
	enc = &snapEncoder{}
	enc.encodeConfig(snapTestConfig())
	enc.uint(1)
	enc.uint(1 << 63)
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("string length 2^63 accepted")
	}

	// Duplicate stream names would panic inside window.New; the decoder must
	// reject them first.
	enc = &snapEncoder{}
	enc.encodeConfig(snapTestConfig())
	enc.uint(2)
	enc.str("a")
	enc.str("a")
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("duplicate stream names accepted")
	}

	// A worker count no machine has sizes the tick pool's scratch slice.
	enc = &snapEncoder{}
	cfg := snapTestConfig()
	cfg.Workers = 1 << 40
	enc.encodeConfig(cfg)
	if _, err := RestoreEngine(bytes.NewReader(wrapSnapImage(enc.buf.Bytes()))); err == nil {
		t.Error("worker count 2^40 accepted")
	}
}
