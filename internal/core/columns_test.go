package core

import (
	"math"
	"strings"
	"testing"
)

// columnsScenario synthesizes a width×n batch of phase-shifted harmonics in
// stream-major layout, with a deterministic pseudo-random missing pattern
// over the target streams (first half) after the warmup prefix — including
// occasional ticks where every stream is missing at once.
func columnsScenario(width, n, warm int, seed uint64) Columns {
	cols := make(Columns, width)
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	state := seed*6364136223846793005 + 1442695040888963407
	rnd := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for t := 0; t < n; t++ {
		ph := 2 * math.Pi * float64(t) / 48
		for i := 0; i < width; i++ {
			cols[i][t] = math.Sin(ph+0.37*float64(i)) + 0.2*math.Cos(2*ph+float64(i)) +
				float64(rnd()%1000)/12000
		}
		if t < warm {
			continue
		}
		if rnd()%37 == 0 {
			// Entirely missing tick: every stream at once.
			for i := 0; i < width; i++ {
				cols[i][t] = math.NaN()
			}
			continue
		}
		for i := 0; i < width/2; i++ {
			if rnd()%5 == 0 {
				cols[i][t] = math.NaN()
			}
		}
	}
	return cols
}

func columnsTestEngine(t *testing.T, cfg Config, width int) *Engine {
	t.Helper()
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	refs := make(map[string]ReferenceSet, width/2)
	for i := 0; i < width/2; i++ {
		refs[names[i]] = ReferenceSet{Stream: names[i], Candidates: names[width/2:]}
	}
	eng, err := NewEngine(cfg, names, refs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestTickColumnsMatchesTick: columnar ingest must be bit-identical to
// ticking the same rows one by one — outputs, results, and statistics — for
// arbitrary missing patterns (including entirely missing ticks) and arbitrary
// batch boundaries, in both the lazy and eager incremental modes.
func TestTickColumnsMatchesTick(t *testing.T) {
	const width, n, warm = 8, 420, 140
	base := Config{K: 2, PatternLength: 6, D: 2, WindowLength: 96, Profiler: ProfilerIncremental}
	eager := base
	eager.EagerProfiler = true
	naive := base
	naive.Profiler = ProfilerNaive
	for name, cfg := range map[string]Config{"lazy": base, "eager": eager, "naive": naive} {
		t.Run(name, func(t *testing.T) {
			for _, batch := range []int{1, 7, 64, n} {
				colEng := columnsTestEngine(t, cfg, width)
				seqEng := columnsTestEngine(t, cfg, width)
				cols := columnsScenario(width, n, warm, 11)
				row := make([]float64, width)
				for a := 0; a < n; a += batch {
					b := a + batch
					if b > n {
						b = n
					}
					sub := make(Columns, width)
					for i := range sub {
						sub[i] = cols[i][a:b]
					}
					out, res, err := colEng.TickColumns(sub)
					if err != nil {
						t.Fatalf("batch=%d TickColumns(%d:%d): %v", batch, a, b, err)
					}
					for tk := a; tk < b; tk++ {
						for i := 0; i < width; i++ {
							row[i] = cols[i][tk]
						}
						want, wantRes, err := seqEng.Tick(row)
						if err != nil {
							t.Fatalf("batch=%d tick %d: %v", batch, tk, err)
						}
						for i := 0; i < width; i++ {
							got := out[i][tk-a]
							if got != want[i] && !(math.IsNaN(got) && math.IsNaN(want[i])) {
								t.Fatalf("batch=%d tick %d stream %d: columnar %v != sequential %v",
									batch, tk, i, got, want[i])
							}
							cr, sr := res[tk-a][i], wantRes[i]
							if (cr == nil) != (sr == nil) {
								t.Fatalf("batch=%d tick %d stream %d: result presence differs", batch, tk, i)
							}
							if cr != nil && (cr.Value != sr.Value || cr.SumDissimilarity != sr.SumDissimilarity) {
								t.Fatalf("batch=%d tick %d stream %d: result %+v != %+v", batch, tk, i, cr, sr)
							}
						}
					}
				}
				if colEng.Stats != seqEng.Stats {
					t.Fatalf("batch=%d: stats diverged: columnar %+v, sequential %+v",
						batch, colEng.Stats, seqEng.Stats)
				}
				if colEng.Seq() != seqEng.Seq() {
					t.Fatalf("batch=%d: seq diverged: %d != %d", batch, colEng.Seq(), seqEng.Seq())
				}
			}
		})
	}
}

// TestTickColumnsRejectsBadBatches: a batch with the wrong width, ragged
// columns, or a non-finite measurement must be rejected atomically — no tick
// applied, no state mutated.
func TestTickColumnsRejectsBadBatches(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 16}
	eng := columnsTestEngine(t, cfg, 4)
	warm := columnsScenario(4, 20, 20, 3)
	if _, _, err := eng.TickColumns(warm); err != nil {
		t.Fatal(err)
	}
	before := eng.Seq()
	cases := map[string]Columns{
		"width":  {{1}, {2}, {3}},
		"ragged": {{1, 1}, {2}, {3, 3}, {4, 4}},
		"inf":    {{1, 1}, {2, 2}, {3, math.Inf(1)}, {4, 4}},
	}
	for name, cols := range cases {
		if _, _, err := eng.TickColumns(cols); err == nil {
			t.Fatalf("%s: batch accepted, want rejection", name)
		}
		if eng.Seq() != before {
			t.Fatalf("%s: rejected batch advanced seq %d -> %d", name, before, eng.Seq())
		}
	}
	// The error for a non-finite value names the tick and stream.
	_, _, err := eng.TickColumns(cases["inf"])
	if err == nil || !strings.Contains(err.Error(), "tick 1") || !strings.Contains(err.Error(), `"c"`) {
		t.Fatalf("inf error %q does not locate the bad measurement", err)
	}
}

// TestTickColumnsZeroAllocs pins the columnar hot path at zero allocations
// per batched tick in steady state: a complete batch (the healthy-feed fast
// path) and a batch with missing values under SkipDiagnostics both run
// allocation-free once the engine's scratch has warmed up.
func TestTickColumnsZeroAllocs(t *testing.T) {
	const width, n = 8, 64
	cfg := Config{K: 3, PatternLength: 6, D: 2, WindowLength: 144, SkipDiagnostics: true}
	eng := columnsTestEngine(t, cfg, width)
	complete := columnsScenario(width, n, n, 5)
	sparse := columnsScenario(width, n, n, 6)
	for i := 0; i < width/2; i++ {
		sparse[i][n/2] = math.NaN() // one missing tick mid-batch
	}
	// Warm: fill the window and let every scratch buffer reach steady size.
	for tk := 0; tk < (cfg.WindowLength/n+2)*n; tk += n {
		if _, _, err := eng.TickColumns(complete); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := eng.TickColumns(sparse); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, _, err := eng.TickColumns(complete); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("complete batch: %v allocs per TickColumns, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, _, err := eng.TickColumns(sparse); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("sparse batch with SkipDiagnostics: %v allocs per TickColumns, want 0", avg)
	}
}

// TestEngineFloat32ProfilesEquivalence is the float32 ranking-equivalence
// gate: with profile aggregates stored as float32 (one fresh rounding per
// candidate per tick, float64 accumulators underneath) the imputed values
// must stay within 1e-6 of both the float64 incremental engine and the naive
// reference implementation. Anchor aggregation runs in float64 in both modes,
// so any imputed-value difference can only come from a flipped candidate
// ranking — the property the gate bounds.
func TestEngineFloat32ProfilesEquivalence(t *testing.T) {
	base := Config{K: 3, PatternLength: 7, D: 2, WindowLength: 3 * 48, Norm: L2}
	naive := base
	naive.Profiler = ProfilerNaive
	f64 := base
	f64.Profiler = ProfilerIncremental
	f32 := f64
	f32.Float32Profiles = true
	for _, seed := range []uint64{1, 2, 3, 17, 99, 1234, 77777} {
		vals := wideScenario(t, []Config{naive, f64, f32}, []string{"naive", "inc-f64", "inc-f32"}, seed)
		for x := 1; x < len(vals); x++ {
			if len(vals[x]) != len(vals[0]) {
				t.Fatalf("seed %d: imputation count diverged", seed)
			}
		}
		for i := range vals[0] {
			if d := math.Abs(vals[2][i] - vals[0][i]); d > 1e-6 {
				t.Fatalf("seed %d: f32 vs naive imputation %d differs by %g (> 1e-6)", seed, i, d)
			}
			if d := math.Abs(vals[2][i] - vals[1][i]); d > 1e-6 {
				t.Fatalf("seed %d: f32 vs f64 imputation %d differs by %g (> 1e-6)", seed, i, d)
			}
		}
	}
}

// TestTickBatchDelegatesColumnar: TickBatch (the row-major compatibility
// shim) must agree with direct TickColumns ingest and preserve its historical
// partial-failure contract: rows before the first invalid one are applied and
// returned, and the error names the failing row.
func TestTickBatchDelegatesColumnar(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: 16}
	eng := columnsTestEngine(t, cfg, 4)
	rows := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, math.Inf(1), 11, 12},
		{13, 14, 15, 16},
	}
	outs, ress, err := eng.TickBatch(rows)
	if err == nil || !strings.Contains(err.Error(), "batch row 2") {
		t.Fatalf("error %v does not name row 2", err)
	}
	if len(outs) != 2 || len(ress) != 2 {
		t.Fatalf("got %d completed rows, want 2", len(outs))
	}
	if eng.Seq() != 2 {
		t.Fatalf("seq %d after partial batch, want 2", eng.Seq())
	}
	for t2, row := range outs {
		for i, v := range row {
			if v != rows[t2][i] {
				t.Fatalf("row %d[%d] = %v, want %v", t2, i, v, rows[t2][i])
			}
		}
	}
}
