package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Snapshot format v3 — a self-describing binary image of one engine, laid
// out so the bulky part (the retained windows) restores by slicing a
// page-aligned region out of a memory-mapped file, without a full decode:
//
//	"TKCMSNAP"          8-byte magic
//	version             uint32 LE (currently 3)
//	metaLen             uint64 LE
//	meta                metaLen bytes (layout below)
//	metaCRC             uint32 LE, IEEE CRC-32 of meta
//	zero padding        up to windowOff, the smallest multiple of 4096
//	                    past the metaCRC
//	window region       width × filled IEEE-754 float64 LE, stream-major:
//	                    stream i's retained values (oldest first) start at
//	                    windowOff + i×filled×8
//	windowCRC           uint32 LE, IEEE CRC-32 of the window region
//
// The meta section encodes, in order: the Config, the stream names, the
// (possibly lazily ranked) reference sets, the engine and window tick
// counters, the Stats counters, the per-stream cold-start fallback values,
// the retained tick count (filled), and finally windowOff as a fixed-width
// uint64 LE. Integers are varints, floats are IEEE-754 bits LE, strings are
// uvarint-length prefixed UTF-8.
//
// Version 1 and 2 images — a single varint payload with the window values
// inlined after the retained count, under one trailing CRC; v1 additionally
// predates Config.Float32Profiles — still restore through the legacy path.
//
// The incremental profiler's aggregates are deliberately NOT serialized:
// they are demand-driven derived state (see IncrementalProfiler), exactly
// reconstructible from the retained windows, so restore bulk-loads the
// windows into the profiler and lets the first consult rebuild the
// aggregates. This keeps the format independent of profiler internals —
// a snapshot taken with one Config.Profiler restores under any other.
const (
	snapMagic   = "TKCMSNAP"
	snapVersion = 3
	// snapVersionMin is the oldest image version restore still accepts.
	snapVersionMin = 1
	// snapAlign is the v3 window region's alignment: one page, so a
	// memory-mapped image hands the region straight to the bulk loads.
	snapAlign = 4096
	// snapHeaderLen is the fixed prefix before the payload/meta section.
	snapHeaderLen = 20
	// maxSnapSection (64 GiB) bounds every length decoded from an image
	// before memory proportional to it is allocated.
	maxSnapSection = 1 << 36
)

// snapAlignUp rounds n up to the next multiple of snapAlign.
func snapAlignUp(n int) int { return (n + snapAlign - 1) &^ (snapAlign - 1) }

// Snapshot writes a versioned binary image of the engine's state — config,
// reference sets, retained windows, counters — to w, restorable with
// RestoreEngine. It must not run concurrently with Tick or TickBatch (take
// snapshots between ticks; a single-goroutine owner, like a serving shard,
// satisfies this for free).
func (e *Engine) Snapshot(w io.Writer) error {
	enc := &snapEncoder{}
	e.encodeSnapMeta(enc)
	metaLen := enc.buf.Len() + 8 // plus the fixed-width windowOff below
	windowOff := snapAlignUp(snapHeaderLen + metaLen + 4)
	enc.fixed64(uint64(windowOff))
	meta := enc.buf.Bytes()

	var hdr [snapHeaderLen]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(meta)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(meta))
	pad := make([]byte, windowOff-snapHeaderLen-len(meta)-4)
	for _, blk := range [][]byte{hdr[:], meta, crc[:], pad} {
		if _, err := w.Write(blk); err != nil {
			return fmt.Errorf("core: snapshot: %w", err)
		}
	}

	filled := e.w.Filled()
	hist := make([]float64, filled)
	buf := make([]byte, filled*8)
	sum := uint32(0)
	for i := 0; i < e.w.Width(); i++ {
		vals := e.w.SnapshotInto(i, hist)
		for j, v := range vals {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(v))
		}
		sum = crc32.Update(sum, crc32.IEEETable, buf[:len(vals)*8])
		if _, err := w.Write(buf[:len(vals)*8]); err != nil {
			return fmt.Errorf("core: snapshot: %w", err)
		}
	}
	binary.LittleEndian.PutUint32(crc[:], sum)
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	return nil
}

// encodeSnapMeta writes the meta section — everything except the window
// values and the trailing windowOff field — into enc. The v1/v2 payload is
// this same prefix with the window values inlined after it, which is what
// lets both decoders share decodeSnapMeta.
func (e *Engine) encodeSnapMeta(enc *snapEncoder) {
	enc.encodeConfig(e.cfg)

	names := e.w.Names()
	enc.uint(uint64(len(names)))
	for _, n := range names {
		enc.str(n)
	}

	// Reference sets, sorted by stream name so identical engines produce
	// byte-identical snapshots (map iteration order is randomized).
	keys := make([]string, 0, len(e.refs))
	for k := range e.refs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.uint(uint64(len(keys)))
	for _, k := range keys {
		rs := e.refs[k]
		enc.str(k)
		enc.str(rs.Stream)
		enc.uint(uint64(len(rs.Candidates)))
		for _, c := range rs.Candidates {
			enc.str(c)
		}
	}

	enc.int(int64(e.tick))
	enc.int(int64(e.w.Tick()))
	enc.int(int64(e.Stats.Ticks))
	enc.int(int64(e.Stats.Imputations))
	enc.int(int64(e.Stats.ColdStartFills))
	enc.int(int64(e.Stats.ReferenceErrors))
	enc.int(int64(e.Stats.InsufficientHist))

	for _, v := range e.last {
		enc.float(v)
	}

	enc.uint(uint64(e.w.Filled()))
}

// RestoreEngine reconstructs an engine from a Snapshot image. The restored
// engine continues exactly where the snapshotted one left off: same config,
// reference sets, retained windows, tick counters, and cold-start state.
// Profiler aggregates are rebuilt from the windows on first use, so
// subsequent imputations match an uninterrupted engine to within the
// incremental profiler's rebuild tolerance (~1e-9).
func RestoreEngine(r io.Reader) (*Engine, error) {
	return restoreEngine(r, nil)
}

// RestoreEngineWithConfig restores a Snapshot image like RestoreEngine but
// additionally checks the image against the configuration the caller intends
// to serve it under: a snapshot taken with Float32Profiles set refuses to
// restore into a config expecting float64 profile aggregates, and vice versa,
// with a clear error in both directions. The two precisions produce slightly
// different rankings, so silently flipping modes across a restart would break
// the serving layer's equivalence guarantees.
func RestoreEngineWithConfig(r io.Reader, want Config) (*Engine, error) {
	return restoreEngine(r, &want)
}

func restoreEngine(r io.Reader, expect *Config) (*Engine, error) {
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("core: restore: bad magic %q (not a TKCM snapshot)", hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version < snapVersionMin || version > snapVersion {
		return nil, fmt.Errorf("core: restore: unsupported snapshot version %d (want %d..%d)", version, snapVersionMin, snapVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	if n > maxSnapSection {
		return nil, fmt.Errorf("core: restore: implausible payload length %d", n)
	}
	if version >= 3 {
		return restoreV3Stream(r, int(n), expect)
	}

	// Legacy v1/v2: one varint payload, window values inlined, one CRC.
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: restore: reading payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload); want != got {
		return nil, fmt.Errorf("core: restore: checksum mismatch (snapshot corrupt)")
	}

	dec := &snapDecoder{b: payload}
	m, err := decodeSnapMeta(dec, version, expect)
	if err != nil {
		return nil, err
	}
	// A valid payload must still contain 8 bytes per retained value, so the
	// remaining length bounds the allocation (and rules out width*filled
	// overflowing, since both factors were bounded in decodeSnapMeta).
	if rem := len(dec.b) - dec.off; m.filled > 0 && m.filled > rem/(8*len(m.names)) {
		return nil, fmt.Errorf("core: restore: retained window (%d streams × %d ticks) exceeds the %d payload bytes", len(m.names), m.filled, rem)
	}
	hist := make([]float64, len(m.names)*m.filled)
	for i := range hist {
		hist[i] = dec.float()
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	if dec.off != len(dec.b) {
		return nil, fmt.Errorf("core: restore: %d trailing bytes after payload", len(dec.b)-dec.off)
	}
	return m.finish(hist)
}

// restoreV3Stream reads a v3 image section by section from r — meta, its
// CRC, the alignment padding, then the window region — with every read
// bounded by a validated length before its buffer is allocated.
func restoreV3Stream(r io.Reader, metaLen int, expect *Config) (*Engine, error) {
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(r, meta); err != nil {
		return nil, fmt.Errorf("core: restore: reading meta: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading meta checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(meta); want != got {
		return nil, fmt.Errorf("core: restore: meta checksum mismatch (snapshot corrupt)")
	}
	m, windowOff, err := parseV3Meta(meta, expect)
	if err != nil {
		return nil, err
	}
	pad := make([]byte, windowOff-snapHeaderLen-metaLen-4)
	if _, err := io.ReadFull(r, pad); err != nil {
		return nil, fmt.Errorf("core: restore: reading padding: %w", err)
	}
	for _, b := range pad {
		if b != 0 {
			return nil, fmt.Errorf("core: restore: nonzero padding before the window region")
		}
	}
	windowBytes := int64(len(m.names)) * int64(m.filled) * 8
	if windowBytes > maxSnapSection {
		return nil, fmt.Errorf("core: restore: implausible window region size %d", windowBytes)
	}
	region := make([]byte, windowBytes)
	if _, err := io.ReadFull(r, region); err != nil {
		return nil, fmt.Errorf("core: restore: reading window region: %w", err)
	}
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading window checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(region); want != got {
		return nil, fmt.Errorf("core: restore: window checksum mismatch (snapshot corrupt)")
	}
	return m.finish(decodeWindowRegion(region))
}

// RestoreEngineBytes restores a Snapshot image held fully in memory (or
// memory-mapped — see RestoreEngineFile). For v3 images the window region is
// sliced straight out of data without an intermediate copy of the image,
// which is what makes hydrating a parked engine from a mapped checkpoint
// cheap; data is not retained after the call returns. Older images go
// through the streaming path.
func RestoreEngineBytes(data []byte) (*Engine, error) {
	return restoreEngineBytes(data, nil)
}

func restoreEngineBytes(data []byte, expect *Config) (*Engine, error) {
	if len(data) < snapHeaderLen+4 {
		return nil, fmt.Errorf("core: restore: image too short (%d bytes)", len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("core: restore: bad magic %q (not a TKCM snapshot)", data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version < snapVersionMin || version > snapVersion {
		return nil, fmt.Errorf("core: restore: unsupported snapshot version %d (want %d..%d)", version, snapVersionMin, snapVersion)
	}
	if version < 3 {
		return restoreEngine(bytes.NewReader(data), expect)
	}
	metaLen := binary.LittleEndian.Uint64(data[12:20])
	if metaLen > uint64(len(data)-snapHeaderLen-4) {
		return nil, fmt.Errorf("core: restore: meta length %d exceeds the %d-byte image", metaLen, len(data))
	}
	meta := data[snapHeaderLen : snapHeaderLen+int(metaLen)]
	crcOff := snapHeaderLen + int(metaLen)
	if want, got := binary.LittleEndian.Uint32(data[crcOff:]), crc32.ChecksumIEEE(meta); want != got {
		return nil, fmt.Errorf("core: restore: meta checksum mismatch (snapshot corrupt)")
	}
	m, windowOff, err := parseV3Meta(meta, expect)
	if err != nil {
		return nil, err
	}
	windowBytes := int64(len(m.names)) * int64(m.filled) * 8
	if windowBytes > maxSnapSection {
		return nil, fmt.Errorf("core: restore: implausible window region size %d", windowBytes)
	}
	total := int64(windowOff) + windowBytes + 4
	if int64(len(data)) < total {
		return nil, fmt.Errorf("core: restore: window region truncated (image is %d bytes, layout needs %d)", len(data), total)
	}
	if int64(len(data)) > total {
		return nil, fmt.Errorf("core: restore: %d trailing bytes after the window region", int64(len(data))-total)
	}
	for _, b := range data[crcOff+4 : windowOff] {
		if b != 0 {
			return nil, fmt.Errorf("core: restore: nonzero padding before the window region")
		}
	}
	region := data[windowOff : int64(windowOff)+windowBytes]
	if want, got := binary.LittleEndian.Uint32(data[total-4:]), crc32.ChecksumIEEE(region); want != got {
		return nil, fmt.Errorf("core: restore: window checksum mismatch (snapshot corrupt)")
	}
	return m.finish(decodeWindowRegion(region))
}

// parseV3Meta decodes a v3 meta section and its trailing windowOff field,
// then validates the image geometry: the window region must start
// page-aligned, strictly after the metaCRC, with less than one page of
// padding — so regions cannot overlap the meta section, and a region offset
// cannot be inflated to smuggle unchecked bytes into the image.
func parseV3Meta(meta []byte, expect *Config) (*snapMeta, int, error) {
	dec := &snapDecoder{b: meta}
	m, err := decodeSnapMeta(dec, snapVersion, expect)
	if err != nil {
		return nil, 0, err
	}
	off := dec.fixed64()
	if dec.err != nil {
		return nil, 0, fmt.Errorf("core: restore: %w", dec.err)
	}
	if dec.off != len(dec.b) {
		return nil, 0, fmt.Errorf("core: restore: %d trailing bytes in meta section", len(dec.b)-dec.off)
	}
	minOff := uint64(snapHeaderLen + len(meta) + 4)
	switch {
	case off%snapAlign != 0:
		return nil, 0, fmt.Errorf("core: restore: window offset %d is not %d-byte aligned", off, snapAlign)
	case off < minOff:
		return nil, 0, fmt.Errorf("core: restore: window offset %d overlaps the meta section (which ends at %d)", off, minOff)
	case off-minOff >= snapAlign:
		return nil, 0, fmt.Errorf("core: restore: window offset %d leaves more than one page of padding", off)
	}
	return m, int(off), nil
}

// decodeWindowRegion converts the raw stream-major window region into its
// float64 values.
func decodeWindowRegion(region []byte) []float64 {
	vals := make([]float64, len(region)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(region[i*8:]))
	}
	return vals
}

// snapMeta is the decoded meta section of an image: everything the restore
// needs except the window values themselves.
type snapMeta struct {
	cfg    Config
	names  []string
	refs   map[string]ReferenceSet
	tick   int
	wTick  int
	stats  EngineStats
	last   []float64
	filled int
}

// decodeSnapMeta parses the meta fields shared by every format version
// (config through the retained tick count), with every count and length
// bounded by the bytes actually present, so a crafted image cannot allocate
// beyond its own size. The CRC only catches accidental corruption, never
// crafted images, and the public restore API must return errors — never
// panic or OOM.
func decodeSnapMeta(dec *snapDecoder, version uint32, expect *Config) (*snapMeta, error) {
	m := &snapMeta{}
	m.cfg = dec.decodeConfig(version)
	if expect != nil && dec.err == nil && m.cfg.Float32Profiles != expect.Float32Profiles {
		return nil, fmt.Errorf("core: restore: snapshot uses %s profile aggregates but the target config expects %s (set Config.Float32Profiles to match the image, or re-snapshot in the new precision)",
			profilePrecision(m.cfg.Float32Profiles), profilePrecision(expect.Float32Profiles))
	}
	// Bound the decoded dimensions before any size computed from them is
	// allocated or handed to the window constructor. The window's rings are
	// allocated eagerly (WindowLength floats per stream) and Workers sizes
	// the tick pool's scratch, so both are checked before NewEngine can
	// allocate from them. The caps are the same ones Validate enforces, so
	// every engine that could be snapshotted restores.
	if dec.err == nil && (m.cfg.WindowLength < 0 || m.cfg.WindowLength > MaxWindowLength) {
		dec.fail(fmt.Errorf("implausible window length %d", m.cfg.WindowLength))
	}
	if dec.err == nil && (m.cfg.Workers < 0 || m.cfg.Workers > MaxWorkers) {
		dec.fail(fmt.Errorf("implausible worker count %d", m.cfg.Workers))
	}

	// Count fields are bounded by the bytes actually present — every name
	// costs at least its 1-byte length prefix, every reference set at least 3
	// bytes — so a tiny crafted image cannot pre-allocate gigabytes from a
	// claimed count before the first string decode fails on truncation.
	nNames := int(dec.uint())
	if dec.err == nil && (nNames <= 0 || nNames > 1<<24 || nNames > len(dec.b)-dec.off) {
		dec.fail(fmt.Errorf("implausible stream count %d", nNames))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	m.names = make([]string, nNames)
	seen := make(map[string]struct{}, nNames)
	for i := range m.names {
		m.names[i] = dec.str()
		// window.New panics on duplicate names; a crafted image must surface
		// as an error here instead.
		if _, dup := seen[m.names[i]]; dup && dec.err == nil {
			dec.fail(fmt.Errorf("duplicate stream name %q", m.names[i]))
		}
		seen[m.names[i]] = struct{}{}
	}

	nRefs := int(dec.uint())
	if dec.err == nil && (nRefs < 0 || nRefs > (len(dec.b)-dec.off)/3) {
		dec.fail(fmt.Errorf("implausible reference set count %d", nRefs))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	m.refs = make(map[string]ReferenceSet, nRefs)
	for i := 0; i < nRefs && dec.err == nil; i++ {
		key := dec.str()
		rs := ReferenceSet{Stream: dec.str()}
		nc := int(dec.uint())
		for j := 0; j < nc && dec.err == nil; j++ {
			rs.Candidates = append(rs.Candidates, dec.str())
		}
		m.refs[key] = rs
	}

	m.tick = int(dec.int())
	m.wTick = int(dec.int())
	m.stats.Ticks = int(dec.int())
	m.stats.Imputations = int(dec.int())
	m.stats.ColdStartFills = int(dec.int())
	m.stats.ReferenceErrors = int(dec.int())
	m.stats.InsufficientHist = int(dec.int())

	m.last = make([]float64, nNames)
	for i := range m.last {
		m.last[i] = dec.float()
	}

	m.filled = int(dec.uint())
	if dec.err == nil && (m.filled < 0 || m.filled > m.cfg.WindowLength) {
		dec.fail(fmt.Errorf("retained length %d exceeds window length %d", m.filled, m.cfg.WindowLength))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	return m, nil
}

// finish validates the tick counters against the decoded window values
// (stream-major, filled values per stream) and assembles the engine. The
// retained values are already imputed (complete), so bulk-loading them
// through the columnar append path rebuilds exactly the state a live engine
// would hold — bit-identical to replaying them row by row, the TickColumns
// equivalence — with the profiler aggregates left to the demand-driven
// catch-up.
func (m *snapMeta) finish(hist []float64) (*Engine, error) {
	if m.wTick < m.filled-1 || m.tick < m.filled {
		return nil, fmt.Errorf("core: restore: tick counters (%d, %d) predate the %d retained values", m.tick, m.wTick, m.filled)
	}
	e, err := NewEngine(m.cfg, m.names, m.refs)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if m.filled > 0 {
		cols := make([][]float64, len(m.names))
		for i := range cols {
			cols[i] = hist[i*m.filled : (i+1)*m.filled]
		}
		e.w.AdvanceColumns(cols, 0, m.filled)
		if e.inc != nil {
			for i := range cols {
				e.inc.AdvanceBulk(i, cols[i])
			}
		}
	}
	e.tick = m.tick
	e.w.SetTick(m.wTick)
	e.Stats = m.stats
	copy(e.last, m.last)
	return e, nil
}

// snapEncoder accumulates the snapshot payload.
type snapEncoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *snapEncoder) uint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *snapEncoder) int(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *snapEncoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf.WriteByte(b)
}

func (e *snapEncoder) float(v float64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], math.Float64bits(v))
	e.buf.Write(e.scratch[:8])
}

func (e *snapEncoder) fixed64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], v)
	e.buf.Write(e.scratch[:8])
}

func (e *snapEncoder) str(s string) {
	e.uint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *snapEncoder) encodeConfig(c Config) {
	e.int(int64(c.K))
	e.int(int64(c.PatternLength))
	e.int(int64(c.D))
	e.int(int64(c.WindowLength))
	e.int(int64(c.Norm))
	e.int(int64(c.Selection))
	e.int(int64(c.Profiler))
	e.int(int64(c.Workers))
	e.bool(c.WeightedMean)
	e.bool(c.EagerProfiler)
	e.bool(c.SkipDiagnostics)
	e.bool(c.FastExtraction)
	e.bool(c.Float32Profiles) // v2+
}

// profilePrecision names a profile-aggregate precision for error messages.
func profilePrecision(f32 bool) string {
	if f32 {
		return "float32"
	}
	return "float64"
}

// snapDecoder parses a payload with a sticky error: after the first failure
// every accessor returns a zero value, so call sites stay linear.
type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *snapDecoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail(fmt.Errorf("truncated bool at offset %d", d.off))
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *snapDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(fmt.Errorf("truncated float at offset %d", d.off))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *snapDecoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(fmt.Errorf("truncated uint64 at offset %d", d.off))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *snapDecoder) str() string {
	n := int(d.uint())
	if d.err != nil {
		return ""
	}
	// Compare n against the remaining bytes without computing d.off+n: for a
	// crafted length near 2^63-1 the sum would overflow int to a negative
	// value and slip past the bound into a panicking slice expression.
	if n < 0 || n > len(d.b)-d.off {
		d.fail(fmt.Errorf("truncated string at offset %d", d.off))
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *snapDecoder) decodeConfig(version uint32) Config {
	var c Config
	c.K = int(d.int())
	c.PatternLength = int(d.int())
	c.D = int(d.int())
	c.WindowLength = int(d.int())
	c.Norm = Norm(d.int())
	c.Selection = Selection(d.int())
	c.Profiler = ProfilerKind(d.int())
	c.Workers = int(d.int())
	c.WeightedMean = d.bool()
	c.EagerProfiler = d.bool()
	c.SkipDiagnostics = d.bool()
	c.FastExtraction = d.bool()
	if version >= 2 {
		c.Float32Profiles = d.bool()
	}
	return c
}
