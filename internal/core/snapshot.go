package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Snapshot format v2 — a self-describing binary image of one engine:
//
//	"TKCMSNAP"          8-byte magic
//	version             uint32 LE (currently 2)
//	payloadLen          uint64 LE
//	payload             payloadLen bytes (layout below)
//	crc                 uint32 LE, IEEE CRC-32 of the payload
//
// Version 2 appends the Config.Float32Profiles flag to the encoded Config;
// version 1 images (which predate the flag) still restore, with the flag
// defaulting to false.
//
// The payload encodes, in order: the Config, the stream names, the
// (possibly lazily ranked) reference sets, the engine and window tick
// counters, the Stats counters, the per-stream cold-start fallback values,
// and finally the retained window of every stream (oldest first). Integers
// are varints, floats are IEEE-754 bits LE, strings are uvarint-length
// prefixed UTF-8.
//
// The incremental profiler's aggregates are deliberately NOT serialized:
// they are demand-driven derived state (see IncrementalProfiler), exactly
// reconstructible from the retained windows, so RestoreEngine replays the
// windows through the profiler and lets the first consult rebuild the
// aggregates. This keeps the format independent of profiler internals —
// a snapshot taken with one Config.Profiler restores under any other.
const (
	snapMagic   = "TKCMSNAP"
	snapVersion = 2
	// snapVersionMin is the oldest image version RestoreEngine still accepts.
	snapVersionMin = 1
)

// Snapshot writes a versioned binary image of the engine's state — config,
// reference sets, retained windows, counters — to w, restorable with
// RestoreEngine. It must not run concurrently with Tick or TickBatch (take
// snapshots between ticks; a single-goroutine owner, like a serving shard,
// satisfies this for free).
func (e *Engine) Snapshot(w io.Writer) error {
	enc := &snapEncoder{}
	enc.encodeConfig(e.cfg)

	names := e.w.Names()
	enc.uint(uint64(len(names)))
	for _, n := range names {
		enc.str(n)
	}

	// Reference sets, sorted by stream name so identical engines produce
	// byte-identical snapshots (map iteration order is randomized).
	keys := make([]string, 0, len(e.refs))
	for k := range e.refs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.uint(uint64(len(keys)))
	for _, k := range keys {
		rs := e.refs[k]
		enc.str(k)
		enc.str(rs.Stream)
		enc.uint(uint64(len(rs.Candidates)))
		for _, c := range rs.Candidates {
			enc.str(c)
		}
	}

	enc.int(int64(e.tick))
	enc.int(int64(e.w.Tick()))
	enc.int(int64(e.Stats.Ticks))
	enc.int(int64(e.Stats.Imputations))
	enc.int(int64(e.Stats.ColdStartFills))
	enc.int(int64(e.Stats.ReferenceErrors))
	enc.int(int64(e.Stats.InsufficientHist))

	for _, v := range e.last {
		enc.float(v)
	}

	filled := e.w.Filled()
	enc.uint(uint64(filled))
	hist := make([]float64, filled)
	for i := 0; i < e.w.Width(); i++ {
		for _, v := range e.w.SnapshotInto(i, hist) {
			enc.float(v)
		}
	}

	payload := enc.buf.Bytes()
	var hdr [20]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	return nil
}

// RestoreEngine reconstructs an engine from a Snapshot image. The restored
// engine continues exactly where the snapshotted one left off: same config,
// reference sets, retained windows, tick counters, and cold-start state.
// Profiler aggregates are rebuilt from the windows on first use, so
// subsequent imputations match an uninterrupted engine to within the
// incremental profiler's rebuild tolerance (~1e-9).
func RestoreEngine(r io.Reader) (*Engine, error) {
	return restoreEngine(r, nil)
}

// RestoreEngineWithConfig restores a Snapshot image like RestoreEngine but
// additionally checks the image against the configuration the caller intends
// to serve it under: a snapshot taken with Float32Profiles set refuses to
// restore into a config expecting float64 profile aggregates, and vice versa,
// with a clear error in both directions. The two precisions produce slightly
// different rankings, so silently flipping modes across a restart would break
// the serving layer's equivalence guarantees.
func RestoreEngineWithConfig(r io.Reader, want Config) (*Engine, error) {
	return restoreEngine(r, &want)
}

func restoreEngine(r io.Reader, expect *Config) (*Engine, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("core: restore: bad magic %q (not a TKCM snapshot)", hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version < snapVersionMin || version > snapVersion {
		return nil, fmt.Errorf("core: restore: unsupported snapshot version %d (want %d..%d)", version, snapVersionMin, snapVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	const maxPayload = 1 << 36 // 64 GiB: generous sanity bound against corrupt lengths
	if n > maxPayload {
		return nil, fmt.Errorf("core: restore: implausible payload length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: restore: reading payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("core: restore: reading checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload); want != got {
		return nil, fmt.Errorf("core: restore: checksum mismatch (snapshot corrupt)")
	}

	dec := &snapDecoder{b: payload}
	cfg := dec.decodeConfig(version)
	if expect != nil && dec.err == nil && cfg.Float32Profiles != expect.Float32Profiles {
		return nil, fmt.Errorf("core: restore: snapshot uses %s profile aggregates but the target config expects %s (set Config.Float32Profiles to match the image, or re-snapshot in the new precision)",
			profilePrecision(cfg.Float32Profiles), profilePrecision(expect.Float32Profiles))
	}
	// Bound the decoded dimensions before any size computed from them is
	// allocated or handed to the window constructor: the CRC only catches
	// accidental corruption, not crafted images, and the public restore API
	// must return errors, never panic or OOM.
	// The window's rings are allocated eagerly (WindowLength floats per
	// stream) and Workers sizes the tick pool's scratch, so both are checked
	// before NewEngine can allocate from them. The caps are the same ones
	// Validate enforces, so every engine that could be snapshotted restores.
	if dec.err == nil && (cfg.WindowLength < 0 || cfg.WindowLength > MaxWindowLength) {
		dec.fail(fmt.Errorf("implausible window length %d", cfg.WindowLength))
	}
	if dec.err == nil && (cfg.Workers < 0 || cfg.Workers > MaxWorkers) {
		dec.fail(fmt.Errorf("implausible worker count %d", cfg.Workers))
	}

	// Count fields are bounded by the bytes actually present — every name
	// costs at least its 1-byte length prefix, every reference set at least 3
	// bytes — so a tiny crafted image cannot pre-allocate gigabytes from a
	// claimed count before the first string decode fails on truncation.
	nNames := int(dec.uint())
	if dec.err == nil && (nNames <= 0 || nNames > 1<<24 || nNames > len(dec.b)-dec.off) {
		dec.fail(fmt.Errorf("implausible stream count %d", nNames))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	names := make([]string, nNames)
	seen := make(map[string]struct{}, nNames)
	for i := range names {
		names[i] = dec.str()
		// window.New panics on duplicate names; a crafted image must surface
		// as an error here instead.
		if _, dup := seen[names[i]]; dup && dec.err == nil {
			dec.fail(fmt.Errorf("duplicate stream name %q", names[i]))
		}
		seen[names[i]] = struct{}{}
	}

	nRefs := int(dec.uint())
	if dec.err == nil && (nRefs < 0 || nRefs > (len(dec.b)-dec.off)/3) {
		dec.fail(fmt.Errorf("implausible reference set count %d", nRefs))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	refs := make(map[string]ReferenceSet, nRefs)
	for i := 0; i < nRefs && dec.err == nil; i++ {
		key := dec.str()
		rs := ReferenceSet{Stream: dec.str()}
		nc := int(dec.uint())
		for j := 0; j < nc && dec.err == nil; j++ {
			rs.Candidates = append(rs.Candidates, dec.str())
		}
		refs[key] = rs
	}

	tick := int(dec.int())
	wTick := int(dec.int())
	var stats EngineStats
	stats.Ticks = int(dec.int())
	stats.Imputations = int(dec.int())
	stats.ColdStartFills = int(dec.int())
	stats.ReferenceErrors = int(dec.int())
	stats.InsufficientHist = int(dec.int())

	last := make([]float64, nNames)
	for i := range last {
		last[i] = dec.float()
	}

	filled := int(dec.uint())
	if dec.err == nil && (filled < 0 || filled > cfg.WindowLength) {
		dec.fail(fmt.Errorf("retained length %d exceeds window length %d", filled, cfg.WindowLength))
	}
	// A valid payload must still contain 8 bytes per retained value, so the
	// remaining length bounds the allocation (and rules out nNames*filled
	// overflowing, since both factors were bounded above).
	if rem := len(dec.b) - dec.off; dec.err == nil && filled > 0 && filled > rem/(8*nNames) {
		dec.fail(fmt.Errorf("retained window (%d streams × %d ticks) exceeds the %d payload bytes", nNames, filled, rem))
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	hist := make([]float64, nNames*filled)
	for i := range hist {
		hist[i] = dec.float()
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: restore: %w", dec.err)
	}
	if dec.off != len(dec.b) {
		return nil, fmt.Errorf("core: restore: %d trailing bytes after payload", len(dec.b)-dec.off)
	}
	if wTick < filled-1 || tick < filled {
		return nil, fmt.Errorf("core: restore: tick counters (%d, %d) predate the %d retained values", tick, wTick, filled)
	}

	e, err := NewEngine(cfg, names, refs)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	// Replay the retained ticks through the window and the incremental
	// profiler: the values are already imputed, so this rebuilds exactly the
	// state a live engine would hold, with the aggregates left to the
	// demand-driven catch-up.
	row := make([]float64, nNames)
	for t := 0; t < filled; t++ {
		for i := range row {
			row[i] = hist[i*filled+t]
		}
		e.w.Advance(row)
		if e.inc != nil {
			for i, v := range row {
				e.inc.Advance(i, v)
			}
		}
	}
	e.tick = tick
	e.w.SetTick(wTick)
	e.Stats = stats
	copy(e.last, last)
	return e, nil
}

// snapEncoder accumulates the snapshot payload.
type snapEncoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *snapEncoder) uint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *snapEncoder) int(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *snapEncoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf.WriteByte(b)
}

func (e *snapEncoder) float(v float64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], math.Float64bits(v))
	e.buf.Write(e.scratch[:8])
}

func (e *snapEncoder) str(s string) {
	e.uint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *snapEncoder) encodeConfig(c Config) {
	e.int(int64(c.K))
	e.int(int64(c.PatternLength))
	e.int(int64(c.D))
	e.int(int64(c.WindowLength))
	e.int(int64(c.Norm))
	e.int(int64(c.Selection))
	e.int(int64(c.Profiler))
	e.int(int64(c.Workers))
	e.bool(c.WeightedMean)
	e.bool(c.EagerProfiler)
	e.bool(c.SkipDiagnostics)
	e.bool(c.FastExtraction)
	e.bool(c.Float32Profiles) // v2
}

// profilePrecision names a profile-aggregate precision for error messages.
func profilePrecision(f32 bool) string {
	if f32 {
		return "float32"
	}
	return "float64"
}

// snapDecoder parses a payload with a sticky error: after the first failure
// every accessor returns a zero value, so call sites stay linear.
type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *snapDecoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail(fmt.Errorf("truncated bool at offset %d", d.off))
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *snapDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(fmt.Errorf("truncated float at offset %d", d.off))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *snapDecoder) str() string {
	n := int(d.uint())
	if d.err != nil {
		return ""
	}
	// Compare n against the remaining bytes without computing d.off+n: for a
	// crafted length near 2^63-1 the sum would overflow int to a negative
	// value and slip past the bound into a panicking slice expression.
	if n < 0 || n > len(d.b)-d.off {
		d.fail(fmt.Errorf("truncated string at offset %d", d.off))
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *snapDecoder) decodeConfig(version uint32) Config {
	var c Config
	c.K = int(d.int())
	c.PatternLength = int(d.int())
	c.D = int(d.int())
	c.WindowLength = int(d.int())
	c.Norm = Norm(d.int())
	c.Selection = Selection(d.int())
	c.Profiler = ProfilerKind(d.int())
	c.Workers = int(d.int())
	c.WeightedMean = d.bool()
	c.EagerProfiler = d.bool()
	c.SkipDiagnostics = d.bool()
	c.FastExtraction = d.bool()
	if version >= 2 {
		c.Float32Profiles = d.bool()
	}
	return c
}
