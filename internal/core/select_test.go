package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFig8Golden replays the paper's Fig. 8 worked example: profile
// D = [0.5, 0.3, 2.1, 0.7, 4.0] with l = 3, k = 2 must select the patterns
// P(t6) and P(t9) (candidate indices 0 and 3) with sum 1.2.
func TestFig8Golden(t *testing.T) {
	idx, sum, ok := selectDP(fig8D, 2, 3)
	if !ok {
		t.Fatal("selectDP reported infeasible")
	}
	if !reflect.DeepEqual(idx, []int{0, 3}) {
		t.Fatalf("anchors = %v, want [0 3] (P(t6), P(t9))", idx)
	}
	if math.Abs(sum-1.2) > 1e-12 {
		t.Fatalf("sum = %v, want 1.2", sum)
	}
}

// TestFig8GreedyDiffers demonstrates the Sec. 6.1 claim on the Fig. 8 data:
// greedy takes the smallest-dissimilarity candidate (index 1, D = 0.3),
// which blocks index 0 and forces index 3, for a total of 1.0... and here
// greedy actually wins? No: 0.3 overlaps candidates 0..3? With l = 3,
// candidate 1 blocks candidates within |i−j| < 3, i.e. 0..3, leaving only
// candidate 4 (D = 4.0): total 4.3 > 1.2. The DP avoids this trap.
func TestFig8GreedyDiffers(t *testing.T) {
	idx, sum, ok := selectGreedy(fig8D, 2, 3, nil)
	if !ok {
		t.Fatal("greedy reported infeasible")
	}
	if !reflect.DeepEqual(idx, []int{1, 4}) {
		t.Fatalf("greedy anchors = %v, want [1 4]", idx)
	}
	if math.Abs(sum-4.3) > 1e-12 {
		t.Fatalf("greedy sum = %v, want 4.3", sum)
	}
	_, dpSum, _ := selectDP(fig8D, 2, 3)
	if dpSum >= sum {
		t.Fatalf("DP sum %v not better than greedy %v", dpSum, sum)
	}
}

func TestSelectOverlapping(t *testing.T) {
	idx, sum, ok := selectOverlapping([]float64{5, 1, 1.1, 9, 1.2}, 3, nil)
	if !ok {
		t.Fatal("overlapping selection reported infeasible")
	}
	if !reflect.DeepEqual(idx, []int{1, 2, 4}) {
		t.Fatalf("anchors = %v, want [1 2 4]", idx)
	}
	if math.Abs(sum-3.3) > 1e-12 {
		t.Fatalf("sum = %v, want 3.3", sum)
	}
}

func TestSelectDPInfeasible(t *testing.T) {
	// 5 candidates, l = 3: at most 2 non-overlapping patterns fit.
	if _, _, ok := selectDP(fig8D, 3, 3); ok {
		t.Fatal("selectDP accepted an infeasible k")
	}
	if _, _, ok := selectGreedy(fig8D, 3, 3, nil); ok {
		t.Fatal("selectGreedy accepted an infeasible k")
	}
	if _, _, ok := selectOverlapping(fig8D, 6, nil); ok {
		t.Fatal("selectOverlapping accepted k > candidates")
	}
}

func TestSelectDPSingleAnchor(t *testing.T) {
	idx, sum, ok := selectDP([]float64{3, 1, 2}, 1, 5)
	if !ok || !reflect.DeepEqual(idx, []int{1}) || sum != 1 {
		t.Fatalf("got idx=%v sum=%v ok=%v, want [1] 1 true", idx, sum, ok)
	}
}

func TestSelectDPNonOverlapInvariant(t *testing.T) {
	f := func(seed int64, kRaw, lRaw uint8) bool {
		n := 40
		l := int(lRaw)%6 + 1
		k := int(kRaw)%4 + 1
		d := randomProfile(seed, n)
		idx, _, ok := selectDP(d, k, l)
		if !ok {
			// Feasibility: n candidates host ⌈n/l⌉ disjoint patterns.
			return (n-1)/l+1 < k
		}
		if len(idx) != k {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if idx[i]-idx[i-1] < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectDPOptimal compares the DP against exhaustive search on small
// random profiles: the DP must achieve the minimum sum over all k-subsets of
// pairwise non-overlapping candidates (Def. 3 condition 3).
func TestSelectDPOptimal(t *testing.T) {
	f := func(seed int64, kRaw, lRaw uint8) bool {
		n := 14
		l := int(lRaw)%4 + 1
		k := int(kRaw)%3 + 1
		d := randomProfile(seed, n)
		_, dpSum, dpOK := selectDP(d, k, l)
		bestSum, found := bruteForceMin(d, k, l)
		if dpOK != found {
			return false
		}
		if !dpOK {
			return true
		}
		return math.Abs(dpSum-bestSum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyNeverBeatsDP: on any profile, the greedy sum is ≥ the DP sum.
func TestGreedyNeverBeatsDP(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		n := 30
		l := int(lRaw)%5 + 1
		k := 3
		d := randomProfile(seed, n)
		_, dpSum, dpOK := selectDP(d, k, l)
		_, gSum, gOK := selectGreedy(d, k, l, nil)
		if !dpOK || !gOK {
			return dpOK == gOK || dpOK // DP must be feasible whenever greedy is
		}
		return dpSum <= gSum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceMin enumerates all k-subsets of candidates with pairwise anchor
// distance ≥ l and returns the minimal sum.
func bruteForceMin(d []float64, k, l int) (float64, bool) {
	best := math.Inf(1)
	found := false
	var rec func(start int, left int, sum float64)
	rec = func(start, left int, sum float64) {
		if left == 0 {
			if sum < best {
				best = sum
			}
			found = true
			return
		}
		for j := start; j <= len(d)-1; j++ {
			rec(j+l, left-1, sum+d[j])
		}
	}
	rec(0, k, 0)
	return best, found
}

func randomProfile(seed int64, n int) []float64 {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	out := make([]float64, n)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = float64(state%1000) / 100
	}
	return out
}
