package core

import (
	"fmt"
	"math"
)

// ProfilerKind selects the pattern-extraction strategy — the implementation
// that computes the dissimilarity profile of Def. 2, the phase the paper
// measures at ~92% of TKCM's runtime (Sec. 7.4).
type ProfilerKind int

const (
	// ProfilerAuto picks the fastest correct implementation for the call
	// site: the incremental profiler in the streaming engine under the L2
	// norm, the FFT profiler for one-shot slice imputations when
	// FastExtraction is set, and the naive profiler otherwise.
	ProfilerAuto ProfilerKind = iota
	// ProfilerNaive is the paper's Def. 2 loop: O(d·l·L) per profile,
	// supports every norm.
	ProfilerNaive
	// ProfilerFFT computes the L2 profile via FFT cross-correlation in
	// O(d·L·log L) (Sec. 8 future work). Non-L2 norms fall back to naive.
	ProfilerFFT
	// ProfilerIncremental maintains the L2 profile across consecutive engine
	// ticks in O(d·L) per tick, exploiting that the streaming window shifts
	// by one column per tick (a STOMP-style diagonal update). Outside the
	// engine (one-shot slice imputation, non-L2 norms) it falls back to the
	// FFT or naive profiler.
	ProfilerIncremental
)

// String returns the flag-friendly name of the kind.
func (k ProfilerKind) String() string {
	switch k {
	case ProfilerAuto:
		return "auto"
	case ProfilerNaive:
		return "naive"
	case ProfilerFFT:
		return "fft"
	case ProfilerIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("ProfilerKind(%d)", int(k))
	}
}

// ParseProfilerKind maps a flag value ("auto", "naive", "fft",
// "incremental") back to its ProfilerKind.
func ParseProfilerKind(s string) (ProfilerKind, error) {
	for _, k := range []ProfilerKind{ProfilerAuto, ProfilerNaive, ProfilerFFT, ProfilerIncremental} {
		if s == k.String() {
			return k, nil
		}
	}
	return ProfilerAuto, fmt.Errorf("core: unknown profiler %q (want auto, naive, fft or incremental)", s)
}

// Profiler computes the dissimilarity profile D[j] = δ(P(anchor_j), P(tn))
// over plain reference histories (oldest first, equal lengths), writing into
// dst (allocated when nil). All implementations agree with the Def. 2 loop
// up to floating-point rounding; equivalence is enforced by tests.
type Profiler interface {
	// Name identifies the implementation in benches and logs.
	Name() string
	// Profile computes the dissimilarity profile for pattern length l under
	// the given norm. refs must be non-empty with equal-length rows.
	Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64
}

// NaiveProfiler is the paper's Def. 2 loop over all candidate anchors:
// O(d·l·L) per profile, every norm supported.
type NaiveProfiler struct{}

// Name implements Profiler.
func (NaiveProfiler) Name() string { return "naive" }

// Profile implements Profiler via the direct per-anchor loop.
func (NaiveProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	return dissimilarityProfile(refs, l, norm, dst)
}

// FFTProfiler computes the L2 profile via FFT cross-correlation in
// O(d·L·log L); other norms fall back to the naive loop (the energy/
// cross-correlation decomposition only exists for L2).
type FFTProfiler struct{}

// Name implements Profiler.
func (FFTProfiler) Name() string { return "fft" }

// Profile implements Profiler.
func (FFTProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	if norm != L2 {
		return dissimilarityProfile(refs, l, norm, dst)
	}
	return dissimilarityProfileFFT(refs, l, dst)
}

// incRebuildEvery bounds floating-point drift of the incremental updates: a
// full O(d·l·L) rebuild every incRebuildEvery ticks costs O(d·l) amortized
// per tick and keeps the maintained profile within ~1e-9 of the naive one.
const incRebuildEvery = 8192

// incStreamState holds the per-reference sliding aggregates of one stream.
// With v the stream's retained window (oldest first, m ticks), qs = m − l:
//
//	eq        = Σ_{x<l} v[qs+x]²           (query pattern energy)
//	energy[j] = Σ_{x<l} v[j+x]²            (candidate pattern energy)
//	cross[j]  = Σ_{x<l} v[j+x]·v[qs+x]     (candidate·query dot product)
//
// so the stream's L2 profile contribution at anchor j is
// energy[j] + eq − 2·cross[j]. When the window advances by one tick, every
// cross entry moves along a diagonal of the dot-product matrix (candidate
// and query both shift by one), which updates it with one subtraction and
// one addition — the same observation that powers the STOMP matrix-profile
// algorithm.
//
// The state keeps its own contiguous copy of the window in hist, slid with
// amortized-O(1) compaction (backing of capacity 2L, shifted to the front
// when the right edge is reached), so the hot loops run over one plain slice
// with no per-tick snapshot. The candidate energies shift by exactly one
// slot per steady-state tick, so they live in the same kind of backing and
// the shift is a start-offset bump instead of a memmove.
type incStreamState struct {
	hist   []float64 // backing, len 2L; window = hist[start : start+m]
	start  int
	m      int // filled ticks, ≤ L
	cross  []float64
	energy []float64 // backing, len 2L; entries = energy[estart : estart+nCand]
	estart int
	nCand  int
	eq     float64
	ticks        int // engine ticks absorbed
	sinceRebuild int
}

// IncrementalProfiler maintains per-stream profile aggregates inside the
// engine, replacing the O(d·l·L) per-tick recompute with an O(d·L) update
// (pattern length drops out of the per-tick cost entirely). It is stateful:
// the engine calls Advance exactly once per stream per tick, after that
// stream's value for the tick is final, and assembles profiles for any
// reference subset via ProfileWindow. The aggregates are per stream, not per
// target, so every imputation in a tick shares them.
//
// Its stateless Profile method (the Profiler interface) delegates to the FFT
// profiler — one-shot slice imputations have no tick-to-tick state to exploit.
type IncrementalProfiler struct {
	l       int
	winLen  int
	states  []*incStreamState
	fallbak FFTProfiler
}

// NewIncrementalProfiler creates the engine-side incremental profiler for
// pattern length l over width streams of a window with capacity winLen.
func NewIncrementalProfiler(l, width, winLen int) *IncrementalProfiler {
	p := &IncrementalProfiler{l: l, winLen: winLen, states: make([]*incStreamState, width)}
	for i := range p.states {
		p.states[i] = &incStreamState{}
	}
	return p
}

// Name implements Profiler.
func (p *IncrementalProfiler) Name() string { return "incremental" }

// Profile implements Profiler for one-shot slice histories (no streaming
// state available) by delegating to the FFT fast path.
func (p *IncrementalProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	return p.fallbak.Profile(refs, l, norm, dst)
}

// Advance absorbs one tick of stream i whose finalized value (observed or
// imputed) is v. It must be called exactly once per stream per engine tick,
// in tick order.
func (p *IncrementalProfiler) Advance(i int, v float64) {
	st := p.states[i]
	l, L := p.l, p.winLen
	if st.hist == nil {
		st.hist = make([]float64, 2*L)
		st.energy = make([]float64, 2*L)
	}
	st.ticks++
	wasFull := st.m == L
	var evicted float64
	if wasFull {
		// Slide: compact the backing when the right edge is reached, then
		// drop the oldest and append v. The evicted value stays addressable
		// at hist[start-1] for the diagonal update below.
		if st.start+st.m == len(st.hist) {
			copy(st.hist, st.hist[st.start:st.start+st.m])
			st.start = 0
		}
		evicted = st.hist[st.start]
		st.hist[st.start+st.m] = v
		st.start++
	} else {
		st.hist[st.start+st.m] = v
		st.m++
	}
	nv := st.hist[st.start : st.start+st.m]
	m := st.m

	// Query energy: first computable at m == l, then maintained with the
	// entering/leaving value pair.
	switch {
	case m < l:
		return
	case m == l:
		st.eq = 0
		for _, val := range nv[m-l:] {
			st.eq += val * val
		}
	default:
		st.eq += nv[m-1]*nv[m-1] - nv[m-1-l]*nv[m-1-l]
	}

	nCand := m - 2*l + 1
	if nCand <= 0 {
		return
	}
	qs := m - l
	nOld := st.nCand
	expectOld := nCand
	if !wasFull {
		expectOld = nCand - 1
	}
	// Rebuild when the incremental relations have no predecessor to extend:
	// state shape mismatch, the first candidate of a warming window, a
	// window too short for the neighbor updates, or the periodic
	// drift-bounding refresh.
	if nOld != expectOld || expectOld == 0 || nCand < 2 || st.sinceRebuild >= incRebuildEvery {
		st.rebuild(nv, l)
		return
	}
	st.sinceRebuild++
	st.nCand = nCand
	vNew := nv[m-1]
	if wasFull {
		// Steady state: candidate starts stay index-aligned; each cross
		// entry slides along its diagonal. The value left of candidate 0 is
		// the evicted one.
		qold := nv[qs-1]
		left := evicted
		cross := st.cross[:nCand]
		anchors := nv[l-1 : l-1+nCand]
		for j := range cross {
			cross[j] += anchors[j]*vNew - left*qold
			left = nv[j]
		}
		// Candidate energies shift down one slot (a start-offset bump) and
		// the newest candidate's energy extends its neighbor by one pair.
		if st.estart+nCand == len(st.energy) {
			copy(st.energy, st.energy[st.estart:st.estart+nCand])
			st.estart = 0
		}
		st.estart++
		last := st.estart + nCand - 1
		lastStart := nCand - 1 // window-local start index of the newest candidate
		st.energy[last] = st.energy[last-1] - nv[lastStart-1]*nv[lastStart-1] + nv[lastStart-1+l]*nv[lastStart-1+l]
		return
	}
	// Warm-up (window still growing): one candidate appears per tick. Old
	// entry j-1 slides diagonally into new entry j; entry 0 is computed
	// fresh in O(l).
	if cap(st.cross) < nCand {
		grown := make([]float64, nCand, p.winLen-2*l+1)
		copy(grown, st.cross)
		st.cross = grown
	} else {
		st.cross = st.cross[:nCand]
	}
	for j := nCand - 1; j >= 1; j-- {
		st.cross[j] = st.cross[j-1] - nv[j-1]*nv[qs-1] + nv[j-1+l]*vNew
	}
	c0 := 0.0
	for x := 0; x < l; x++ {
		c0 += nv[x] * nv[qs+x]
	}
	st.cross[0] = c0
	last := st.estart + nCand - 1
	lastStart := nCand - 1
	st.energy[last] = st.energy[last-1] - nv[lastStart-1]*nv[lastStart-1] + nv[lastStart-1+l]*nv[lastStart-1+l]
}

// rebuild recomputes all aggregates exactly from the current window.
func (st *incStreamState) rebuild(nv []float64, l int) {
	m := len(nv)
	nCand := m - 2*l + 1
	qs := m - l
	st.sinceRebuild = 0
	st.nCand = nCand
	st.estart = 0
	st.eq = 0
	for _, v := range nv[qs:] {
		st.eq += v * v
	}
	if cap(st.cross) < nCand {
		grown := make([]float64, nCand)
		st.cross = grown
	} else {
		st.cross = st.cross[:nCand]
	}
	// Candidate energies roll in O(m); cross products are O(l) each.
	e := 0.0
	for x := 0; x < l; x++ {
		e += nv[x] * nv[x]
	}
	for j := 0; j < nCand; j++ {
		st.energy[j] = e
		if j+1 < nCand {
			e += nv[j+l]*nv[j+l] - nv[j]*nv[j]
		}
		c := 0.0
		for x := 0; x < l; x++ {
			c += nv[j+x] * nv[qs+x]
		}
		st.cross[j] = c
	}
}

// ProfileWindow assembles the L2 dissimilarity profile over the reference
// streams refIdx from the maintained aggregates in O(d·L), writing into dst
// (allocated when nil). All referenced states must be advanced to the same
// tick and hold the same candidate count; it panics otherwise (an engine
// sequencing bug, not a data condition).
func (p *IncrementalProfiler) ProfileWindow(refIdx []int, dst []float64) []float64 {
	if len(refIdx) == 0 {
		panic("core: ProfileWindow needs at least one reference stream")
	}
	first := p.states[refIdx[0]]
	nCand := len(first.cross)
	tick := first.ticks
	if dst == nil {
		dst = make([]float64, nCand)
	}
	dst = dst[:nCand]
	for x, ri := range refIdx {
		st := p.states[ri]
		if st.ticks != tick || len(st.cross) != nCand {
			panic(fmt.Sprintf("core: incremental state for stream %d out of sync (tick %d/%d, candidates %d/%d)",
				ri, st.ticks, tick, len(st.cross), nCand))
		}
		energy := st.energy[st.estart : st.estart+nCand]
		cross := st.cross[:nCand]
		eq := st.eq
		if x == 0 {
			for j := range dst {
				dst[j] = energy[j] + eq - 2*cross[j]
			}
			continue
		}
		for j := range dst {
			dst[j] += energy[j] + eq - 2*cross[j]
		}
	}
	for j, v := range dst {
		if v < 0 {
			v = 0 // guard incremental rounding below zero
		}
		dst[j] = math.Sqrt(v)
	}
	return dst
}

// sliceProfiler resolves the profiler used for one-shot slice imputations
// (Impute). The deprecated FastExtraction flag is an alias for ProfilerFFT.
func (c Config) sliceProfiler() Profiler {
	switch c.Profiler {
	case ProfilerNaive:
		return NaiveProfiler{}
	case ProfilerFFT, ProfilerIncremental:
		return FFTProfiler{}
	default:
		if c.FastExtraction {
			return FFTProfiler{}
		}
		return NaiveProfiler{}
	}
}

// engineProfilerKind resolves the streaming engine's extraction strategy.
// Auto prefers the incremental profiler under L2 (the norm it supports);
// every kind degrades to naive for non-L2 norms, matching the slice path.
func (c Config) engineProfilerKind() ProfilerKind {
	k := c.Profiler
	if k == ProfilerAuto {
		if c.FastExtraction {
			k = ProfilerFFT
		} else {
			k = ProfilerIncremental
		}
	}
	if c.Norm != L2 && k != ProfilerNaive {
		return ProfilerNaive
	}
	return k
}
