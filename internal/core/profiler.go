package core

import (
	"fmt"
	"math"
)

// ProfilerKind selects the pattern-extraction strategy — the implementation
// that computes the dissimilarity profile of Def. 2, the phase the paper
// measures at ~92% of TKCM's runtime (Sec. 7.4).
type ProfilerKind int

const (
	// ProfilerAuto picks the fastest correct implementation for the call
	// site: the incremental profiler in the streaming engine under the L2
	// norm, the FFT profiler for one-shot slice imputations when
	// FastExtraction is set, and the naive profiler otherwise.
	ProfilerAuto ProfilerKind = iota
	// ProfilerNaive is the paper's Def. 2 loop: O(d·l·L) per profile,
	// supports every norm.
	ProfilerNaive
	// ProfilerFFT computes the L2 profile via FFT cross-correlation in
	// O(d·L·log L) (Sec. 8 future work). Non-L2 norms fall back to naive.
	ProfilerFFT
	// ProfilerIncremental maintains per-stream L2 profile aggregates across
	// consecutive engine ticks (a STOMP-style diagonal update). State is
	// demand-driven: recording a tick is O(1) per stream, and a stream's
	// aggregates are caught up only when it is consulted as a reference, so
	// untouched streams cost nothing (Config.EagerProfiler restores the
	// maintain-every-stream-every-tick behavior). Outside the engine
	// (one-shot slice imputation, non-L2 norms) it falls back to the FFT or
	// naive profiler.
	ProfilerIncremental
)

// String returns the flag-friendly name of the kind.
func (k ProfilerKind) String() string {
	switch k {
	case ProfilerAuto:
		return "auto"
	case ProfilerNaive:
		return "naive"
	case ProfilerFFT:
		return "fft"
	case ProfilerIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("ProfilerKind(%d)", int(k))
	}
}

// ParseProfilerKind maps a flag value ("auto", "naive", "fft",
// "incremental") back to its ProfilerKind.
func ParseProfilerKind(s string) (ProfilerKind, error) {
	for _, k := range []ProfilerKind{ProfilerAuto, ProfilerNaive, ProfilerFFT, ProfilerIncremental} {
		if s == k.String() {
			return k, nil
		}
	}
	return ProfilerAuto, fmt.Errorf("core: unknown profiler %q (want auto, naive, fft or incremental)", s)
}

// Profiler computes the dissimilarity profile D[j] = δ(P(anchor_j), P(tn))
// over plain reference histories (oldest first, equal lengths), writing into
// dst (allocated when nil). All implementations agree with the Def. 2 loop
// up to floating-point rounding; equivalence is enforced by tests.
type Profiler interface {
	// Name identifies the implementation in benches and logs.
	Name() string
	// Profile computes the dissimilarity profile for pattern length l under
	// the given norm. refs must be non-empty with equal-length rows.
	Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64
}

// NaiveProfiler is the paper's Def. 2 loop over all candidate anchors:
// O(d·l·L) per profile, every norm supported.
type NaiveProfiler struct{}

// Name implements Profiler.
func (NaiveProfiler) Name() string { return "naive" }

// Profile implements Profiler via the direct per-anchor loop.
func (NaiveProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	return dissimilarityProfile(refs, l, norm, dst)
}

// FFTProfiler computes the L2 profile via FFT cross-correlation in
// O(d·L·log L); other norms fall back to the naive loop (the energy/
// cross-correlation decomposition only exists for L2).
type FFTProfiler struct{}

// Name implements Profiler.
func (FFTProfiler) Name() string { return "fft" }

// Profile implements Profiler.
func (FFTProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	if norm != L2 {
		return dissimilarityProfile(refs, l, norm, dst)
	}
	return dissimilarityProfileFFT(refs, l, dst)
}

// incRebuildEvery bounds floating-point drift of the incremental updates: a
// full rebuild at least every incRebuildEvery absorbed ticks keeps the
// maintained profile within ~1e-9 of the naive one.
const incRebuildEvery = 8192

// incStreamState holds one stream's retained history plus its (possibly
// stale) sliding profile aggregates. With v the stream's window (oldest
// first, m ticks) and qs = m − l:
//
//	eq        = Σ_{x<l} v[qs+x]²           (query pattern energy)
//	energy[j] = Σ_{x<l} v[j+x]²            (candidate pattern energy)
//	cross[j]  = Σ_{x<l} v[j+x]·v[qs+x]     (candidate·query dot product)
//
// so the stream's L2 profile contribution at anchor j is
// energy[j] + eq − 2·cross[j]. When the window advances by one tick, every
// cross entry moves along a diagonal of the dot-product matrix (candidate
// and query both shift by one), which updates it with one subtraction and
// one addition — the same observation that powers the STOMP matrix-profile
// algorithm.
//
// The history lives in a contiguous backing of capacity 2L, slid with
// amortized-O(1) compaction (shifted to the front when the right edge is
// reached), so the hot loops run over plain slices. Aggregates are
// demand-driven: Advance only appends, and sync catches the aggregates up to
// the current tick when the stream is actually consulted — replaying the
// deferred diagonal updates tick by tick when that is cheaper, rebuilding
// from scratch otherwise. syncStart/syncM record the window geometry at the
// last sync so the replay can reconstruct every intermediate window directly
// from the backing.
type incStreamState struct {
	hist  []float64 // backing, len 2L; window = hist[start : start+m]
	start int
	m     int // filled ticks, ≤ L
	ticks int // engine ticks absorbed

	// Aggregates; valid only while aggOK, and then describe the window as it
	// was `deferred` ticks ago.
	aggOK        bool
	deferred     int // ticks absorbed since the last sync
	syncStart    int // start at the last sync (adjusted on compaction)
	syncM        int // m at the last sync
	sinceRebuild int // synced ticks since the last full rebuild

	cross  []float64 // len = candidate count at last sync, cap maxCand
	energy []float64 // backing, len 2L; entries = energy[estart : estart+nCand]
	estart int
	eq     float64

	// contrib caches the stream's profile contribution vector
	// energy[j] + eq − 2·cross[j] for the tick it was computed at, so ticks
	// whose missing streams share reference streams compute it once.
	// contrib32 is its float32 twin, used instead of contrib when the
	// profiler runs with Float32Profiles: the vector is still computed in
	// float64 from the float64 accumulators (one fresh rounding per entry,
	// no accumulated drift) but stored and summed as float32, halving the
	// memory traffic of every profile assembly that reads it.
	contrib     []float64
	contrib32   []float32
	contribTick int
}

// IncrementalProfiler maintains per-stream profile aggregates inside the
// engine, replacing the O(d·l·L) per-tick recompute with demand-driven
// incremental maintenance. It is stateful: the engine calls Advance exactly
// once per stream per tick, after that stream's value for the tick is final,
// and assembles profiles for any reference subset via ProfileWindow.
//
// Advance is O(1): it only appends to the stream's history. A stream's
// aggregates are caught up when it is first consulted in a tick, choosing
// the cheaper of replaying the t deferred diagonal updates (O(t·L)) and a
// full rebuild (O(l·L)), so per-tick engine cost scales with the streams
// that actually serve as references, not with the total width. SetEager
// restores the maintain-everything-every-tick behavior.
//
// The aggregates are per stream, not per target, and each consulted stream's
// contribution vector is computed at most once per tick, so every imputation
// in a tick shares both.
//
// Its stateless Profile method (the Profiler interface) delegates to the FFT
// profiler — one-shot slice imputations have no tick-to-tick state to exploit.
type IncrementalProfiler struct {
	l       int
	winLen  int
	maxCand int
	eager   bool
	f32     bool
	states  []*incStreamState
	fallbak FFTProfiler
}

// NewIncrementalProfiler creates the engine-side incremental profiler for
// pattern length l over width streams of a window with capacity winLen.
func NewIncrementalProfiler(l, width, winLen int) *IncrementalProfiler {
	maxCand := winLen - 2*l + 1
	if maxCand < 0 {
		maxCand = 0
	}
	p := &IncrementalProfiler{l: l, winLen: winLen, maxCand: maxCand, states: make([]*incStreamState, width)}
	for i := range p.states {
		p.states[i] = &incStreamState{contribTick: -1}
	}
	return p
}

// SetEager switches between demand-driven catch-up (false, the default) and
// the eager mode that syncs every stream's aggregates on every Advance.
func (p *IncrementalProfiler) SetEager(eager bool) { p.eager = eager }

// SetFloat32 switches the derived profile aggregates (the per-stream
// contribution vectors and their assembly) to float32 storage — see
// Config.Float32Profiles. The maintained diagonal accumulators stay float64
// either way. Toggle only before the first tick.
func (p *IncrementalProfiler) SetFloat32(f32 bool) { p.f32 = f32 }

// Float32 reports whether the profiler stores its derived profile aggregates
// as float32.
func (p *IncrementalProfiler) Float32() bool { return p.f32 }

// Name implements Profiler.
func (p *IncrementalProfiler) Name() string { return "incremental" }

// Profile implements Profiler for one-shot slice histories (no streaming
// state available) by delegating to the FFT fast path.
func (p *IncrementalProfiler) Profile(refs [][]float64, l int, norm Norm, dst []float64) []float64 {
	return p.fallbak.Profile(refs, l, norm, dst)
}

// Advance absorbs one tick of stream i whose finalized value (observed or
// imputed) is v. It must be called exactly once per stream per engine tick,
// in tick order. It is O(1): aggregate maintenance is deferred until the
// stream is consulted (unless SetEager(true)).
func (p *IncrementalProfiler) Advance(i int, v float64) {
	st := p.states[i]
	L := p.winLen
	if st.hist == nil {
		st.hist = make([]float64, 2*L)
	}
	st.ticks++
	if st.m == L {
		// Slide: compact the backing when the right edge is reached, then
		// append v. Values left of the window stay addressable, so deferred
		// diagonal updates can be replayed against them.
		if st.start+st.m == len(st.hist) {
			copy(st.hist, st.hist[st.start:st.start+st.m])
			// The whole history shifted down by `start`; keep the sync
			// anchor pointing at the same values (it goes negative when the
			// sync point predates the surviving values, which sync detects).
			st.syncStart -= st.start
			st.start = 0
		}
		st.hist[st.start+st.m] = v
		st.start++
	} else {
		st.hist[st.start+st.m] = v
		st.m++
	}
	if st.aggOK {
		st.deferred++
	}
	if p.eager {
		p.sync(st)
	}
}

// AdvanceBulk absorbs a run of ticks of stream i whose finalized values are
// vs (oldest first) — exactly equivalent to calling Advance once per value,
// but the history append happens in at most a few contiguous copies instead
// of per-element stores, and the deferral counters are bumped once per run.
// This is the columnar ingest path: demand-driven catch-up makes the deferred
// diagonal updates identical whether the ticks arrived one by one or in bulk,
// so batched and unbatched engines stay bit-identical. Eager mode falls back
// to per-value Advance, which syncs after every tick by contract.
func (p *IncrementalProfiler) AdvanceBulk(i int, vs []float64) {
	if p.eager {
		for _, v := range vs {
			p.Advance(i, v)
		}
		return
	}
	st := p.states[i]
	L := p.winLen
	if st.hist == nil {
		st.hist = make([]float64, 2*L)
	}
	st.ticks += len(vs)
	if st.aggOK {
		st.deferred += len(vs)
	}
	for len(vs) > 0 {
		if st.m < L {
			// Warm-up: the window grows in place (start stays 0).
			n := L - st.m
			if n > len(vs) {
				n = len(vs)
			}
			copy(st.hist[st.start+st.m:], vs[:n])
			st.m += n
			vs = vs[n:]
			continue
		}
		// Steady state: append after the window, compacting the backing when
		// the right edge is reached — the same points at which per-value
		// Advance compacts, so sync's replay window geometry is identical.
		room := len(st.hist) - (st.start + st.m)
		if room == 0 {
			copy(st.hist, st.hist[st.start:st.start+st.m])
			st.syncStart -= st.start
			st.start = 0
			room = len(st.hist) - st.m
		}
		n := room
		if n > len(vs) {
			n = len(vs)
		}
		copy(st.hist[st.start+st.m:st.start+st.m+n], vs[:n])
		st.start += n
		vs = vs[n:]
	}
}

// sync brings st's aggregates up to the current tick. It replays the
// deferred per-tick diagonal updates when the aggregates are recent enough
// for that to beat a rebuild (t deferred ticks cost O(t·L) vs the rebuild's
// O(l·L)), and rebuilds from the raw window otherwise.
func (p *IncrementalProfiler) sync(st *incStreamState) {
	if st.aggOK && st.deferred == 0 {
		return
	}
	l := p.l
	nCand := st.m - 2*l + 1
	if nCand <= 0 {
		// Window too short for any candidate; nothing to maintain yet.
		st.aggOK = false
		return
	}
	if st.energy == nil {
		// Aggregate storage is allocated on first consult, not on first
		// Advance, so never-referenced streams only pay for their history.
		st.energy = make([]float64, len(st.hist))
		st.cross = make([]float64, 0, p.maxCand)
	}
	grow := st.m - st.syncM
	slide := st.start - st.syncStart
	// Replay needs: valid aggregates that already covered ≥ 1 candidate, a
	// deferral expressible as growth-then-slide steps over values still in
	// the backing, staying under the drift-rebuild budget — and it must be
	// cheaper than the O(m + nCand·l) rebuild.
	replay := st.aggOK &&
		st.syncM-2*l+1 >= 1 &&
		st.syncStart >= 0 && grow >= 0 && slide >= 0 && grow+slide == st.deferred &&
		st.sinceRebuild+st.deferred < incRebuildEvery &&
		st.deferred*(nCand+l) <= st.m+nCand*l
	if !replay {
		st.rebuild(st.hist[st.start:st.start+st.m], l)
		st.syncStart = st.start
		st.syncM = st.m
		st.deferred = 0
		st.aggOK = true
		return
	}
	for g := 1; g <= grow; g++ {
		st.replayGrowth(st.syncM+g, l)
	}
	for s := st.syncStart + 1; s <= st.start; s++ {
		st.replaySlide(s, st.m, l)
	}
	st.sinceRebuild += st.deferred
	st.syncStart = st.start
	st.syncM = st.m
	st.deferred = 0
}

// replayGrowth replays one deferred warm-up tick: the window grew from m-1
// to m values (start unchanged at 0 during warm-up), adding one candidate.
// Old cross entry j-1 slides diagonally into entry j; entry 0 is computed
// fresh in O(l); the new candidate's energy extends its neighbor by one
// pair.
func (st *incStreamState) replayGrowth(m, l int) {
	w := st.hist[st.syncStart : st.syncStart+m]
	nCand := m - 2*l + 1
	qs := m - l
	vNew := w[m-1]
	qold := w[qs-1]
	st.cross = st.cross[:nCand]
	cross := st.cross
	for j := nCand - 1; j >= 1; j-- {
		cross[j] = cross[j-1] - w[j-1]*qold + w[j-1+l]*vNew
	}
	c0 := 0.0
	for x := 0; x < l; x++ {
		c0 += w[x] * w[qs+x]
	}
	cross[0] = c0
	last := st.estart + nCand - 1
	ls := nCand - 1 // window-local start of the newest candidate
	st.energy[last] = st.energy[last-1] - w[ls-1]*w[ls-1] + w[ls-1+l]*w[ls-1+l]
	st.eq += vNew*vNew - w[m-1-l]*w[m-1-l]
}

// replaySlide replays one deferred steady-state tick: the full window slid
// by one, so that its backing position after the tick was hist[s : s+m].
// Candidate starts stay index-aligned; each cross entry slides along its
// diagonal with one fused multiply-subtract pair, the candidate energies
// shift by a start-offset bump plus one fresh entry, and the query energy
// exchanges its entering/leaving values.
func (st *incStreamState) replaySlide(s, m, l int) {
	nCand := m - 2*l + 1
	qs := m - l
	hist := st.hist
	vNew := hist[s+m-1]
	qold := hist[s+qs-1]
	cross := st.cross[:nCand]
	anchors := hist[s+l-1 : s+l-1+nCand]
	lefts := hist[s-1 : s-1+nCand]
	// The diagonal update, 4-way unrolled (bounds hoisted by the re-slices
	// above).
	j := 0
	for ; j+4 <= nCand; j += 4 {
		cross[j] += anchors[j]*vNew - lefts[j]*qold
		cross[j+1] += anchors[j+1]*vNew - lefts[j+1]*qold
		cross[j+2] += anchors[j+2]*vNew - lefts[j+2]*qold
		cross[j+3] += anchors[j+3]*vNew - lefts[j+3]*qold
	}
	for ; j < nCand; j++ {
		cross[j] += anchors[j]*vNew - lefts[j]*qold
	}
	// Candidate energies shift down one slot (a start-offset bump) and the
	// newest candidate's energy extends its neighbor by one pair.
	if st.estart+nCand == len(st.energy) {
		copy(st.energy, st.energy[st.estart:st.estart+nCand])
		st.estart = 0
	}
	st.estart++
	last := st.estart + nCand - 1
	e0 := hist[s+nCand-2]
	e1 := hist[s+nCand-2+l]
	st.energy[last] = st.energy[last-1] - e0*e0 + e1*e1
	st.eq += vNew*vNew - qold*qold
}

// rebuild recomputes all aggregates exactly from the current window.
func (st *incStreamState) rebuild(nv []float64, l int) {
	m := len(nv)
	nCand := m - 2*l + 1
	qs := m - l
	st.sinceRebuild = 0
	st.estart = 0
	st.eq = 0
	for _, v := range nv[qs:] {
		st.eq += v * v
	}
	if cap(st.cross) < nCand {
		st.cross = make([]float64, nCand)
	} else {
		st.cross = st.cross[:nCand]
	}
	// Candidate energies roll in O(m); cross products are O(l) each.
	e := 0.0
	for x := 0; x < l; x++ {
		e += nv[x] * nv[x]
	}
	for j := 0; j < nCand; j++ {
		st.energy[j] = e
		if j+1 < nCand {
			e += nv[j+l]*nv[j+l] - nv[j]*nv[j]
		}
		c := 0.0
		for x := 0; x < l; x++ {
			c += nv[j+x] * nv[qs+x]
		}
		st.cross[j] = c
	}
}

// syncContrib catches st up to the current tick and returns its contribution
// vector energy[j] + eq − 2·cross[j], computing it at most once per tick.
func (p *IncrementalProfiler) syncContrib(st *incStreamState) []float64 {
	p.sync(st)
	nCand := len(st.cross)
	if st.contribTick == st.ticks && len(st.contrib) == nCand {
		return st.contrib
	}
	if cap(st.contrib) < nCand {
		n := p.maxCand
		if n < nCand {
			n = nCand
		}
		st.contrib = make([]float64, n)
	}
	st.contrib = st.contrib[:nCand]
	contrib := st.contrib[:nCand:nCand]
	energy := st.energy[st.estart : st.estart+nCand : st.estart+nCand]
	cross := st.cross[:nCand:nCand]
	eq := st.eq
	j := 0
	for ; j+4 <= nCand; j += 4 {
		contrib[j] = energy[j] + eq - 2*cross[j]
		contrib[j+1] = energy[j+1] + eq - 2*cross[j+1]
		contrib[j+2] = energy[j+2] + eq - 2*cross[j+2]
		contrib[j+3] = energy[j+3] + eq - 2*cross[j+3]
	}
	for ; j < nCand; j++ {
		contrib[j] = energy[j] + eq - 2*cross[j]
	}
	st.contribTick = st.ticks
	return st.contrib
}

// syncContrib32 is syncContrib's Float32Profiles twin: the contribution
// vector is computed in float64 from the float64 accumulators but stored as
// float32 — one fresh rounding per entry per tick, never accumulated — so
// every profile assembly that reads it moves half the bytes.
func (p *IncrementalProfiler) syncContrib32(st *incStreamState) []float32 {
	p.sync(st)
	nCand := len(st.cross)
	if st.contribTick == st.ticks && len(st.contrib32) == nCand {
		return st.contrib32
	}
	if cap(st.contrib32) < nCand {
		n := p.maxCand
		if n < nCand {
			n = nCand
		}
		st.contrib32 = make([]float32, n)
	}
	st.contrib32 = st.contrib32[:nCand]
	contrib := st.contrib32[:nCand:nCand]
	energy := st.energy[st.estart : st.estart+nCand : st.estart+nCand]
	cross := st.cross[:nCand:nCand]
	eq := st.eq
	j := 0
	for ; j+4 <= nCand; j += 4 {
		contrib[j] = float32(energy[j] + eq - 2*cross[j])
		contrib[j+1] = float32(energy[j+1] + eq - 2*cross[j+1])
		contrib[j+2] = float32(energy[j+2] + eq - 2*cross[j+2])
		contrib[j+3] = float32(energy[j+3] + eq - 2*cross[j+3])
	}
	for ; j < nCand; j++ {
		contrib[j] = float32(energy[j] + eq - 2*cross[j])
	}
	st.contribTick = st.ticks
	return st.contrib32
}

// Prepare catches up every referenced stream and fills its per-tick
// contribution cache. The engine calls it serially before fanning a tick's
// imputations out across workers, so the concurrent ProfileWindow calls are
// pure reads of the cached vectors.
func (p *IncrementalProfiler) Prepare(refIdx []int) {
	for _, ri := range refIdx {
		if p.f32 {
			p.syncContrib32(p.states[ri])
		} else {
			p.syncContrib(p.states[ri])
		}
	}
}

// ProfileWindow assembles the L2 dissimilarity profile over the reference
// streams refIdx from the maintained aggregates, writing into dst (allocated
// when nil). Streams not yet consulted this tick are caught up on demand
// (catch-up mutates state — concurrent callers must Prepare their reference
// streams first, as the engine does). All referenced states must be advanced
// to the same tick and hold the same candidate count; it panics otherwise
// (an engine sequencing bug, not a data condition).
func (p *IncrementalProfiler) ProfileWindow(refIdx []int, dst []float64) []float64 {
	if len(refIdx) == 0 {
		panic("core: ProfileWindow needs at least one reference stream")
	}
	if p.f32 {
		return p.profileWindow32(refIdx, dst)
	}
	first := p.states[refIdx[0]]
	c0 := p.syncContrib(first)
	nCand := len(c0)
	tick := first.ticks
	if dst == nil {
		dst = make([]float64, nCand)
	}
	dst = dst[:nCand:nCand]
	copy(dst, c0)
	for _, ri := range refIdx[1:] {
		st := p.states[ri]
		c := p.syncContrib(st)
		if st.ticks != tick || len(c) != nCand {
			panic(fmt.Sprintf("core: incremental state for stream %d out of sync (tick %d/%d, candidates %d/%d)",
				ri, st.ticks, tick, len(c), nCand))
		}
		c = c[:nCand:nCand]
		j := 0
		for ; j+4 <= nCand; j += 4 {
			dst[j] += c[j]
			dst[j+1] += c[j+1]
			dst[j+2] += c[j+2]
			dst[j+3] += c[j+3]
		}
		for ; j < nCand; j++ {
			dst[j] += c[j]
		}
	}
	for j, v := range dst {
		if v < 0 {
			v = 0 // guard incremental rounding below zero
		}
		dst[j] = math.Sqrt(v)
	}
	return dst
}

// profileWindow32 assembles the profile from float32 contribution vectors:
// the d-way sum loads half the bytes of the float64 path, accumulating into
// the caller-owned float64 dst (so concurrent workers stay race-free after
// Prepare, exactly like the float64 path). Same contract as ProfileWindow.
func (p *IncrementalProfiler) profileWindow32(refIdx []int, dst []float64) []float64 {
	first := p.states[refIdx[0]]
	c0 := p.syncContrib32(first)
	nCand := len(c0)
	tick := first.ticks
	if dst == nil {
		dst = make([]float64, nCand)
	}
	dst = dst[:nCand:nCand]
	c0 = c0[:nCand:nCand]
	j := 0
	for ; j+4 <= nCand; j += 4 {
		dst[j] = float64(c0[j])
		dst[j+1] = float64(c0[j+1])
		dst[j+2] = float64(c0[j+2])
		dst[j+3] = float64(c0[j+3])
	}
	for ; j < nCand; j++ {
		dst[j] = float64(c0[j])
	}
	for _, ri := range refIdx[1:] {
		st := p.states[ri]
		c := p.syncContrib32(st)
		if st.ticks != tick || len(c) != nCand {
			panic(fmt.Sprintf("core: incremental state for stream %d out of sync (tick %d/%d, candidates %d/%d)",
				ri, st.ticks, tick, len(c), nCand))
		}
		c = c[:nCand:nCand]
		j := 0
		for ; j+4 <= nCand; j += 4 {
			dst[j] += float64(c[j])
			dst[j+1] += float64(c[j+1])
			dst[j+2] += float64(c[j+2])
			dst[j+3] += float64(c[j+3])
		}
		for ; j < nCand; j++ {
			dst[j] += float64(c[j])
		}
	}
	for j, v := range dst {
		if v < 0 {
			v = 0 // guard rounding below zero
		}
		dst[j] = math.Sqrt(v)
	}
	return dst
}

// sliceProfiler resolves the profiler used for one-shot slice imputations
// (Impute). The deprecated FastExtraction flag is an alias for ProfilerFFT.
func (c Config) sliceProfiler() Profiler {
	switch c.Profiler {
	case ProfilerNaive:
		return NaiveProfiler{}
	case ProfilerFFT, ProfilerIncremental:
		return FFTProfiler{}
	default:
		if c.FastExtraction {
			return FFTProfiler{}
		}
		return NaiveProfiler{}
	}
}

// engineProfilerKind resolves the streaming engine's extraction strategy.
// Auto prefers the incremental profiler under L2 (the norm it supports);
// every kind degrades to naive for non-L2 norms, matching the slice path.
func (c Config) engineProfilerKind() ProfilerKind {
	k := c.Profiler
	if k == ProfilerAuto {
		if c.FastExtraction {
			k = ProfilerFFT
		} else {
			k = ProfilerIncremental
		}
	}
	if c.Norm != L2 && k != ProfilerNaive {
		return ProfilerNaive
	}
	return k
}
