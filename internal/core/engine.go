package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"tkcm/internal/window"
)

// Engine performs continuous imputation over a set of co-evolving streams:
// at every tick it records the new row of measurements and immediately
// imputes every missing value using TKCM, so the retained window is always
// complete (the paper's streaming setting, Sec. 3). Each incomplete stream
// is imputed individually with its own reference set.
//
// Pattern extraction — the dominant phase (Sec. 7.4) — runs through the
// profiler Config.Profiler selects. The default (ProfilerAuto under L2) is
// the incremental profiler with demand-driven state: recording a tick costs
// O(1) per stream and profile aggregates are caught up only for streams
// actually consulted as references, so per-tick cost scales with the missing
// work, not the stream count (Config.EagerProfiler restores per-tick
// maintenance of every stream). With Config.Workers > 1, the per-stream
// imputations of one tick fan out across a persistent worker pool.
type Engine struct {
	cfg  Config
	w    *window.Window
	refs map[string]ReferenceSet
	// fallback records per-stream last imputed/observed value, used only
	// while the window is too short for TKCM (cold start).
	last []float64
	// prof is the resolved extraction strategy; inc aliases it when it is
	// the stateful incremental profiler.
	prof Profiler
	inc  *IncrementalProfiler
	// scratch backs the serial tick's profile and snapshot buffers; the
	// parallel path keeps one scratch per worker.
	scratch       imputeScratch
	workerScratch []imputeScratch
	// Tick-owned result buffers, handed to the caller and valid until the
	// next Tick: the completed row, the per-stream results, the missing
	// indices, and the serial path's reference-index scratch.
	out     []float64
	results []*Result
	missing []int
	refIdx  []int
	// tick counts Tick calls; unlike the exported (caller-resettable)
	// Stats.Ticks it is private, so cache invalidation below can rely on it
	// increasing monotonically.
	tick int
	// selCache shares anchor selections within a tick: the dissimilarity
	// profile depends only on the reference set, never on the target, so
	// missing streams with identical reference sets reuse one profile +
	// selection and only aggregate their own anchor values (O(k) each).
	// Entries [0:selCacheLen) are valid for tick selCacheTick.
	selCache     []anchorCacheEntry
	selCacheLen  int
	selCacheTick int
	// Parallel tick state: one job per distinct reference set, the target
	// streams mapped onto those jobs, and the persistent pool feeding the
	// jobs to workers. poolMu guards the pool's lifecycle (start, dispatch,
	// Close) so Close is idempotent and safe to call while a Tick is
	// mid-dispatch.
	jobs    []tickJob
	targets []tickTarget
	poolMu  sync.Mutex
	pool    *tickPool
	// Stats accumulates counters for observability.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Ticks            int // rows consumed
	Imputations      int // TKCM imputations performed
	ColdStartFills   int // missing values filled by cold-start carry-forward
	ReferenceErrors  int // ticks where a stream lacked d usable references
	InsufficientHist int // imputations skipped due to a short window
}

// NewEngine creates a continuous-imputation engine over the named streams.
// refs maps stream name to its ordered candidate reference series; streams
// without an entry get a correlation-ranked reference set lazily on their
// first missing value (RankCandidates).
func NewEngine(cfg Config, names []string, refs map[string]ReferenceSet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if refs == nil {
		refs = make(map[string]ReferenceSet)
	}
	e := &Engine{
		cfg:  cfg,
		w:    window.New(cfg.WindowLength, names...),
		refs: refs,
		last: make([]float64, len(names)),
	}
	switch cfg.engineProfilerKind() {
	case ProfilerFFT:
		e.prof = FFTProfiler{}
	case ProfilerIncremental:
		e.inc = NewIncrementalProfiler(cfg.PatternLength, len(names), cfg.WindowLength)
		e.inc.SetEager(cfg.EagerProfiler)
		e.prof = e.inc
	default:
		e.prof = NaiveProfiler{}
	}
	for i := range e.last {
		e.last[i] = math.NaN()
	}
	return e, nil
}

// Window exposes the engine's streaming window (read-mostly; imputers write
// the current slot).
func (e *Engine) Window() *window.Window { return e.w }

// Config returns the engine's TKCM configuration.
func (e *Engine) Config() Config { return e.cfg }

// Profiler returns the resolved pattern-extraction strategy the engine runs.
func (e *Engine) Profiler() Profiler { return e.prof }

// Seq returns the number of rows the engine has ingested over its lifetime —
// the sequence number of the last applied row (0 for a fresh engine). Unlike
// the caller-resettable Stats.Ticks it is monotone and preserved exactly by
// Snapshot/RestoreEngine, which is what lets a write-ahead-log replay resume
// precisely where a checkpoint ends.
func (e *Engine) Seq() uint64 { return uint64(e.tick) }

// ValidateRow checks row against the engine's stream width and value domain
// (NaN marks a missing value and is legal; ±Inf never is) without mutating
// any state. It is exactly the precondition Tick enforces before touching
// the window, exposed so a serving layer can write-ahead-log a row knowing
// the engine cannot reject it afterwards (or on crash replay).
func (e *Engine) ValidateRow(row []float64) error {
	if len(row) != e.w.Width() {
		return fmt.Errorf("core: row width %d != stream count %d", len(row), e.w.Width())
	}
	for i, v := range row {
		if math.IsInf(v, 0) {
			return fmt.Errorf("core: row[%d] (stream %q): non-finite measurement %v (use NaN for missing)", i, e.w.Names()[i], v)
		}
	}
	return nil
}

// Tick consumes one row of measurements (one value per stream, NaN =
// missing) and imputes every missing value. It returns the completed row
// (imputed in place of NaN) and the per-stream imputation results for
// streams that required TKCM (nil entries for streams that were present,
// cold-start filled, or imputed with Config.SkipDiagnostics set).
//
// The returned slices are owned by the engine and valid until the next call
// to Tick or TickBatch; callers that retain them across ticks must copy.
// A steady-state tick with no missing values performs no allocations.
//
// With Config.Workers > 1 and several streams missing at once, the
// imputations run concurrently on the engine's persistent worker pool:
// reference sets are resolved up front against the tick's raw row, so a
// value imputed in this tick is never consulted as a reference in the same
// tick (the serial tick permits that cascade for streams at lower indices;
// in practice references must be present at tn anyway for the paper's
// reference-selection rule).
func (e *Engine) Tick(row []float64) ([]float64, []*Result, error) {
	// Validate before mutating any state, so a rejected row leaves the
	// engine exactly as it was (service boundaries retry or drop the row).
	// NaN is the missing-value marker and passes; ±Inf is never a valid
	// measurement and would poison the window aggregates.
	if err := e.ValidateRow(row); err != nil {
		return nil, nil, err
	}
	e.w.Advance(row)
	e.tick++
	e.Stats.Ticks++
	if e.out == nil {
		e.out = make([]float64, len(row))
		e.results = make([]*Result, len(row))
	}
	out, results := e.out, e.results
	copy(out, row)
	for i := range results {
		results[i] = nil
	}
	missing := e.missing[:0]
	for i, v := range row {
		if math.IsNaN(v) {
			missing = append(missing, i)
			continue
		}
		e.last[i] = v
		e.advanceState(i)
	}
	e.missing = missing
	if len(missing) == 0 {
		return out, results, nil
	}
	if e.cfg.Workers > 1 && len(missing) > 1 {
		e.imputeMissingParallel(missing, out, results)
	} else {
		e.imputeMissingSerial(missing, out, results)
	}
	return out, results, nil
}

// TickBatch consumes a batch of rows through Tick, preserving its semantics
// tick for tick, and returns the completed rows and per-row results (copied
// out of the engine-owned tick buffers, so they stay valid indefinitely).
// On error it returns the rows completed so far together with the failing
// row's index wrapped in the error.
func (e *Engine) TickBatch(rows [][]float64) ([][]float64, [][]*Result, error) {
	outs := make([][]float64, 0, len(rows))
	ress := make([][]*Result, 0, len(rows))
	for t, row := range rows {
		out, res, err := e.Tick(row)
		if err != nil {
			return outs, ress, fmt.Errorf("core: batch row %d: %w", t, err)
		}
		outs = append(outs, append([]float64(nil), out...))
		ress = append(ress, append([]*Result(nil), res...))
	}
	return outs, ress, nil
}

// advanceState feeds stream i's now-final value for the current tick into
// the incremental profiler (no-op for stateless profilers). It must run
// exactly once per stream per tick, after the stream's value is final.
func (e *Engine) advanceState(i int) {
	if e.inc == nil {
		return
	}
	e.inc.Advance(i, e.w.Stream(i).Newest())
}

// imputeMissingSerial is the classic tick: missing streams are imputed in
// index order, so an earlier imputation may serve as a reference value for a
// later stream in the same tick.
func (e *Engine) imputeMissingSerial(missing []int, out []float64, results []*Result) {
	for _, i := range missing {
		val, res, err := e.imputeStream(i)
		switch {
		case err == nil:
			results[i] = res
			out[i] = val
			e.last[i] = val
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// imputeMissingParallel fans the tick's extraction + selection work out
// across the persistent worker pool (started on first use). Reference
// picking, deduplication, stats, cold fills, incremental catch-up and
// contribution caching, value aggregation, and incremental-state advances
// stay serial; only profile assembly and anchor selection — the ~92% phase
// — run concurrently, with exactly one job per distinct reference set
// (targets sharing references share the job). Each worker owns its scratch
// and writes only its own job's selection slot, and the reference
// aggregates are prepared (caught up and cached) before the fan-out, so the
// concurrent profile reads are race-free.
func (e *Engine) imputeMissingParallel(missing []int, out []float64, results []*Result) {
	nJobs := 0
	tgts := e.targets[:0]
	for _, i := range missing {
		refIdx, err := e.pickRefsInto(i, e.refIdx[:0])
		e.refIdx = refIdx
		if err != nil {
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
			e.advanceState(i)
			continue
		}
		j := -1
		for x := 0; x < nJobs; x++ {
			if slices.Equal(e.jobs[x].refIdx, refIdx) {
				j = x
				break
			}
		}
		if j < 0 {
			if nJobs == len(e.jobs) {
				e.jobs = append(e.jobs, tickJob{})
			}
			j = nJobs
			e.jobs[j].refIdx = append(e.jobs[j].refIdx[:0], refIdx...)
			nJobs++
		}
		tgts = append(tgts, tickTarget{stream: i, job: j})
	}
	e.targets = tgts
	if nJobs == 0 {
		return
	}
	if e.inc != nil {
		// Catch up and cache every referenced stream's contribution vector
		// serially, so the workers' ProfileWindow calls are pure reads.
		for j := 0; j < nJobs; j++ {
			e.inc.Prepare(e.jobs[j].refIdx)
		}
	}
	e.dispatch(nJobs)
	for _, t := range tgts {
		i := t.stream
		jb := &e.jobs[t.job]
		err := jb.err
		var val float64
		var res *Result
		if err == nil {
			val, res, err = aggregateWindow(e.cfg, e.w, i, &jb.sel, e.cfg.SkipDiagnostics)
		}
		switch {
		case err == nil:
			e.Stats.Imputations++
			results[i] = res
			out[i] = val
			e.last[i] = val
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// pickRefsInto resolves the reference set for the stream at index i into dst
// (reusing its storage), ranking candidates from the retained window on
// first use.
func (e *Engine) pickRefsInto(i int, dst []int) ([]int, error) {
	name := e.w.Names()[i]
	rs, ok := e.refs[name]
	if !ok {
		rs = e.rankFromWindow(name)
		e.refs[name] = rs
	}
	return rs.PickInto(e.w, e.cfg.D, dst)
}

// imputeStream runs TKCM for the stream at index i at the current tick,
// sharing the profile + anchor selection with any earlier imputation of the
// tick that used the same reference set.
func (e *Engine) imputeStream(i int) (float64, *Result, error) {
	refIdx, err := e.pickRefsInto(i, e.refIdx[:0])
	e.refIdx = refIdx
	if err != nil {
		return 0, nil, err
	}
	sel, err := e.cachedSelection(refIdx)
	if err != nil {
		return 0, nil, err
	}
	val, res, err := aggregateWindow(e.cfg, e.w, i, sel, e.cfg.SkipDiagnostics)
	if err != nil {
		return 0, nil, err
	}
	e.Stats.Imputations++
	return val, res, nil
}

// anchorCacheEntry memoizes one reference set's selection for the current
// tick. Sharing is sound because a stream's value at tn is written at most
// once per tick (present values never change; a missing stream is imputed
// once), so a reference set resolves to the same histories wherever it
// appears within the tick.
type anchorCacheEntry struct {
	refIdx []int
	sel    anchorSelection
	err    error
}

// cachedSelection returns the profile + anchor selection for refIdx at the
// current tick, computing and memoizing it on first use.
func (e *Engine) cachedSelection(refIdx []int) (*anchorSelection, error) {
	if e.selCacheTick != e.tick {
		e.selCacheTick = e.tick
		e.selCacheLen = 0
	}
	for x := 0; x < e.selCacheLen; x++ {
		ent := &e.selCache[x]
		if slices.Equal(ent.refIdx, refIdx) {
			return &ent.sel, ent.err
		}
	}
	if e.selCacheLen == len(e.selCache) {
		e.selCache = append(e.selCache, anchorCacheEntry{})
	}
	ent := &e.selCache[e.selCacheLen]
	e.selCacheLen++
	ent.refIdx = append(ent.refIdx[:0], refIdx...)
	ent.err = profileSelectWindow(e.cfg, e.w, refIdx, e.prof, &e.scratch, &ent.sel)
	return &ent.sel, ent.err
}

// coldFill fills a missing value while TKCM is not applicable: it carries
// the last known value forward, falling back to the mean of the present
// values in the current row, then to 0. The cold-start path exists only for
// the first ticks of a stream's life; experiments always warm the window
// before injecting missing blocks.
func (e *Engine) coldFill(i int) float64 {
	e.Stats.ColdStartFills++
	v := e.last[i]
	if !math.IsNaN(v) {
		e.w.SetCurrent(i, v)
		return v
	}
	sum, n := 0.0, 0
	for j := 0; j < e.w.Width(); j++ {
		if j == i {
			continue
		}
		if cv := e.w.Current(j); !math.IsNaN(cv) {
			sum += cv
			n++
		}
	}
	if n > 0 {
		v = sum / float64(n)
	} else {
		v = 0
	}
	e.w.SetCurrent(i, v)
	return v
}

// rankFromWindow builds a correlation-ranked reference set for name from the
// retained window contents.
func (e *Engine) rankFromWindow(name string) ReferenceSet {
	histories := make(map[string][]float64, e.w.Width())
	for j, n := range e.w.Names() {
		histories[n] = e.w.Snapshot(j)
	}
	return RankCandidates(name, histories)
}
