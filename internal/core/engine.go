package core

import (
	"fmt"
	"math"

	"tkcm/internal/window"
)

// Engine performs continuous imputation over a set of co-evolving streams:
// at every tick it records the new row of measurements and immediately
// imputes every missing value using TKCM, so the retained window is always
// complete (the paper's streaming setting, Sec. 3). Each incomplete stream
// is imputed individually with its own reference set.
type Engine struct {
	cfg  Config
	w    *window.Window
	refs map[string]ReferenceSet
	// fallback records per-stream last imputed/observed value, used only
	// while the window is too short for TKCM (cold start).
	last []float64
	// Stats accumulates counters for observability.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Ticks            int // rows consumed
	Imputations      int // TKCM imputations performed
	ColdStartFills   int // missing values filled by cold-start carry-forward
	ReferenceErrors  int // ticks where a stream lacked d usable references
	InsufficientHist int // imputations skipped due to a short window
}

// NewEngine creates a continuous-imputation engine over the named streams.
// refs maps stream name to its ordered candidate reference series; streams
// without an entry get a correlation-ranked reference set lazily on their
// first missing value (RankCandidates).
func NewEngine(cfg Config, names []string, refs map[string]ReferenceSet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if refs == nil {
		refs = make(map[string]ReferenceSet)
	}
	e := &Engine{
		cfg:  cfg,
		w:    window.New(cfg.WindowLength, names...),
		refs: refs,
		last: make([]float64, len(names)),
	}
	for i := range e.last {
		e.last[i] = math.NaN()
	}
	return e, nil
}

// Window exposes the engine's streaming window (read-mostly; imputers write
// the current slot).
func (e *Engine) Window() *window.Window { return e.w }

// Config returns the engine's TKCM configuration.
func (e *Engine) Config() Config { return e.cfg }

// Tick consumes one row of measurements (one value per stream, NaN =
// missing) and imputes every missing value. It returns the completed row
// (imputed in place of NaN) and the per-stream imputation results for
// streams that required TKCM (nil entries for streams that were present or
// cold-start filled).
func (e *Engine) Tick(row []float64) ([]float64, []*Result, error) {
	if len(row) != e.w.Width() {
		return nil, nil, fmt.Errorf("core: row width %d != stream count %d", len(row), e.w.Width())
	}
	e.w.Advance(row)
	e.Stats.Ticks++
	results := make([]*Result, len(row))
	out := make([]float64, len(row))
	copy(out, row)
	for i, v := range row {
		if !math.IsNaN(v) {
			e.last[i] = v
			out[i] = v
			continue
		}
		res, err := e.imputeStream(i)
		switch {
		case err == nil:
			results[i] = res
			out[i] = res.Value
			e.last[i] = res.Value
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
	}
	return out, results, nil
}

// imputeStream runs TKCM for the stream at index i at the current tick.
func (e *Engine) imputeStream(i int) (*Result, error) {
	name := e.w.Names()[i]
	rs, ok := e.refs[name]
	if !ok {
		rs = e.rankFromWindow(name)
		e.refs[name] = rs
	}
	refIdx, err := rs.Pick(e.w, e.cfg.D)
	if err != nil {
		return nil, err
	}
	res, err := ImputeWindow(e.cfg, e.w, i, refIdx)
	if err != nil {
		return nil, err
	}
	e.Stats.Imputations++
	return res, nil
}

// coldFill fills a missing value while TKCM is not applicable: it carries
// the last known value forward, falling back to the mean of the present
// values in the current row, then to 0. The cold-start path exists only for
// the first ticks of a stream's life; experiments always warm the window
// before injecting missing blocks.
func (e *Engine) coldFill(i int) float64 {
	e.Stats.ColdStartFills++
	v := e.last[i]
	if !math.IsNaN(v) {
		e.w.SetCurrent(i, v)
		return v
	}
	sum, n := 0.0, 0
	for j := 0; j < e.w.Width(); j++ {
		if j == i {
			continue
		}
		if cv := e.w.Current(j); !math.IsNaN(cv) {
			sum += cv
			n++
		}
	}
	if n > 0 {
		v = sum / float64(n)
	} else {
		v = 0
	}
	e.w.SetCurrent(i, v)
	return v
}

// rankFromWindow builds a correlation-ranked reference set for name from the
// retained window contents.
func (e *Engine) rankFromWindow(name string) ReferenceSet {
	histories := make(map[string][]float64, e.w.Width())
	for j, n := range e.w.Names() {
		histories[n] = e.w.Snapshot(j)
	}
	return RankCandidates(name, histories)
}
