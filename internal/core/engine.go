package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tkcm/internal/window"
)

// Engine performs continuous imputation over a set of co-evolving streams:
// at every tick it records the new row of measurements and immediately
// imputes every missing value using TKCM, so the retained window is always
// complete (the paper's streaming setting, Sec. 3). Each incomplete stream
// is imputed individually with its own reference set.
//
// Pattern extraction — the dominant phase (Sec. 7.4) — runs through the
// profiler Config.Profiler selects. The default (ProfilerAuto under L2) is
// the incremental profiler, which maintains per-stream profile aggregates
// across ticks in O(L) instead of recomputing O(d·l·L) per imputation.
// With Config.Workers > 1, the per-stream imputations of one tick fan out
// across a bounded worker pool.
type Engine struct {
	cfg  Config
	w    *window.Window
	refs map[string]ReferenceSet
	// fallback records per-stream last imputed/observed value, used only
	// while the window is too short for TKCM (cold start).
	last []float64
	// prof is the resolved extraction strategy; inc aliases it when it is
	// the stateful incremental profiler.
	prof Profiler
	inc  *IncrementalProfiler
	// scratch backs the serial tick's profile and snapshot buffers; the
	// parallel path keeps one scratch per worker.
	scratch       imputeScratch
	workerScratch []imputeScratch
	// Stats accumulates counters for observability.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Ticks            int // rows consumed
	Imputations      int // TKCM imputations performed
	ColdStartFills   int // missing values filled by cold-start carry-forward
	ReferenceErrors  int // ticks where a stream lacked d usable references
	InsufficientHist int // imputations skipped due to a short window
}

// NewEngine creates a continuous-imputation engine over the named streams.
// refs maps stream name to its ordered candidate reference series; streams
// without an entry get a correlation-ranked reference set lazily on their
// first missing value (RankCandidates).
func NewEngine(cfg Config, names []string, refs map[string]ReferenceSet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if refs == nil {
		refs = make(map[string]ReferenceSet)
	}
	e := &Engine{
		cfg:  cfg,
		w:    window.New(cfg.WindowLength, names...),
		refs: refs,
		last: make([]float64, len(names)),
	}
	switch cfg.engineProfilerKind() {
	case ProfilerFFT:
		e.prof = FFTProfiler{}
	case ProfilerIncremental:
		e.inc = NewIncrementalProfiler(cfg.PatternLength, len(names), cfg.WindowLength)
		e.prof = e.inc
	default:
		e.prof = NaiveProfiler{}
	}
	for i := range e.last {
		e.last[i] = math.NaN()
	}
	return e, nil
}

// Window exposes the engine's streaming window (read-mostly; imputers write
// the current slot).
func (e *Engine) Window() *window.Window { return e.w }

// Config returns the engine's TKCM configuration.
func (e *Engine) Config() Config { return e.cfg }

// Profiler returns the resolved pattern-extraction strategy the engine runs.
func (e *Engine) Profiler() Profiler { return e.prof }

// Tick consumes one row of measurements (one value per stream, NaN =
// missing) and imputes every missing value. It returns the completed row
// (imputed in place of NaN) and the per-stream imputation results for
// streams that required TKCM (nil entries for streams that were present or
// cold-start filled).
//
// With Config.Workers > 1 and several streams missing at once, the
// imputations run concurrently: reference sets are resolved up front against
// the tick's raw row, so a value imputed in this tick is never consulted as
// a reference in the same tick (the serial tick permits that cascade for
// streams at lower indices; in practice references must be present at tn
// anyway for the paper's reference-selection rule).
func (e *Engine) Tick(row []float64) ([]float64, []*Result, error) {
	if len(row) != e.w.Width() {
		return nil, nil, fmt.Errorf("core: row width %d != stream count %d", len(row), e.w.Width())
	}
	e.w.Advance(row)
	e.Stats.Ticks++
	results := make([]*Result, len(row))
	out := make([]float64, len(row))
	copy(out, row)
	var missing []int
	for i, v := range row {
		if math.IsNaN(v) {
			missing = append(missing, i)
			continue
		}
		e.last[i] = v
		e.advanceState(i)
	}
	if len(missing) == 0 {
		return out, results, nil
	}
	if e.cfg.Workers > 1 && len(missing) > 1 {
		e.imputeMissingParallel(missing, out, results)
	} else {
		e.imputeMissingSerial(missing, out, results)
	}
	return out, results, nil
}

// TickBatch consumes a batch of rows through Tick, preserving its semantics
// tick for tick, and returns the completed rows and per-row results. On
// error it returns the rows completed so far together with the failing row's
// index wrapped in the error.
func (e *Engine) TickBatch(rows [][]float64) ([][]float64, [][]*Result, error) {
	outs := make([][]float64, 0, len(rows))
	ress := make([][]*Result, 0, len(rows))
	for t, row := range rows {
		out, res, err := e.Tick(row)
		if err != nil {
			return outs, ress, fmt.Errorf("core: batch row %d: %w", t, err)
		}
		outs = append(outs, out)
		ress = append(ress, res)
	}
	return outs, ress, nil
}

// advanceState feeds stream i's now-final value for the current tick into
// the incremental profiler (no-op for stateless profilers). It must run
// exactly once per stream per tick, after the stream's value is final.
func (e *Engine) advanceState(i int) {
	if e.inc == nil {
		return
	}
	e.inc.Advance(i, e.w.Stream(i).Newest())
}

// imputeMissingSerial is the classic tick: missing streams are imputed in
// index order, so an earlier imputation may serve as a reference value for a
// later stream in the same tick.
func (e *Engine) imputeMissingSerial(missing []int, out []float64, results []*Result) {
	for _, i := range missing {
		res, err := e.imputeStream(i)
		switch {
		case err == nil:
			results[i] = res
			out[i] = res.Value
			e.last[i] = res.Value
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// imputeMissingParallel fans the tick's imputations out across a bounded
// worker pool. Reference picking, stats, cold fills, and incremental-state
// advances stay serial; only the profile computation and anchor selection —
// the ~92% phase — run concurrently. Each worker owns its scratch, each job
// writes only its own stream's buffer, and reference buffers are read-only
// for the duration of the fan-out, so the ticks are race-free.
func (e *Engine) imputeMissingParallel(missing []int, out []float64, results []*Result) {
	type job struct {
		stream int
		refIdx []int
	}
	jobs := make([]job, 0, len(missing))
	for _, i := range missing {
		refIdx, err := e.pickRefs(i)
		if err != nil {
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
			e.advanceState(i)
			continue
		}
		jobs = append(jobs, job{i, refIdx})
	}
	if len(jobs) == 0 {
		return
	}
	nw := e.cfg.Workers
	if nw > len(jobs) {
		nw = len(jobs)
	}
	for len(e.workerScratch) < nw {
		e.workerScratch = append(e.workerScratch, imputeScratch{})
	}
	type jobOut struct {
		res *Result
		err error
	}
	outs := make([]jobOut, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < nw; wk++ {
		wg.Add(1)
		go func(sc *imputeScratch) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				outs[j].res, outs[j].err = imputeWindowWith(e.cfg, e.w, jobs[j].stream, jobs[j].refIdx, e.prof, sc)
			}
		}(&e.workerScratch[wk])
	}
	wg.Wait()
	for j, jb := range jobs {
		i := jb.stream
		switch o := outs[j]; {
		case o.err == nil:
			e.Stats.Imputations++
			results[i] = o.res
			out[i] = o.res.Value
			e.last[i] = o.res.Value
		case o.err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// pickRefs resolves the reference set for the stream at index i, ranking
// candidates from the retained window on first use.
func (e *Engine) pickRefs(i int) ([]int, error) {
	name := e.w.Names()[i]
	rs, ok := e.refs[name]
	if !ok {
		rs = e.rankFromWindow(name)
		e.refs[name] = rs
	}
	return rs.Pick(e.w, e.cfg.D)
}

// imputeStream runs TKCM for the stream at index i at the current tick.
func (e *Engine) imputeStream(i int) (*Result, error) {
	refIdx, err := e.pickRefs(i)
	if err != nil {
		return nil, err
	}
	res, err := imputeWindowWith(e.cfg, e.w, i, refIdx, e.prof, &e.scratch)
	if err != nil {
		return nil, err
	}
	e.Stats.Imputations++
	return res, nil
}

// coldFill fills a missing value while TKCM is not applicable: it carries
// the last known value forward, falling back to the mean of the present
// values in the current row, then to 0. The cold-start path exists only for
// the first ticks of a stream's life; experiments always warm the window
// before injecting missing blocks.
func (e *Engine) coldFill(i int) float64 {
	e.Stats.ColdStartFills++
	v := e.last[i]
	if !math.IsNaN(v) {
		e.w.SetCurrent(i, v)
		return v
	}
	sum, n := 0.0, 0
	for j := 0; j < e.w.Width(); j++ {
		if j == i {
			continue
		}
		if cv := e.w.Current(j); !math.IsNaN(cv) {
			sum += cv
			n++
		}
	}
	if n > 0 {
		v = sum / float64(n)
	} else {
		v = 0
	}
	e.w.SetCurrent(i, v)
	return v
}

// rankFromWindow builds a correlation-ranked reference set for name from the
// retained window contents.
func (e *Engine) rankFromWindow(name string) ReferenceSet {
	histories := make(map[string][]float64, e.w.Width())
	for j, n := range e.w.Names() {
		histories[n] = e.w.Snapshot(j)
	}
	return RankCandidates(name, histories)
}
