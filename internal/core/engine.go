package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"tkcm/internal/window"
)

// Engine performs continuous imputation over a set of co-evolving streams:
// at every tick it records the new row of measurements and immediately
// imputes every missing value using TKCM, so the retained window is always
// complete (the paper's streaming setting, Sec. 3). Each incomplete stream
// is imputed individually with its own reference set.
//
// Pattern extraction — the dominant phase (Sec. 7.4) — runs through the
// profiler Config.Profiler selects. The default (ProfilerAuto under L2) is
// the incremental profiler with demand-driven state: recording a tick costs
// O(1) per stream and profile aggregates are caught up only for streams
// actually consulted as references, so per-tick cost scales with the missing
// work, not the stream count (Config.EagerProfiler restores per-tick
// maintenance of every stream). With Config.Workers > 1, the per-stream
// imputations of one tick fan out across a persistent worker pool.
type Engine struct {
	cfg  Config
	w    *window.Window
	refs map[string]ReferenceSet
	// fallback records per-stream last imputed/observed value, used only
	// while the window is too short for TKCM (cold start).
	last []float64
	// prof is the resolved extraction strategy; inc aliases it when it is
	// the stateful incremental profiler.
	prof Profiler
	inc  *IncrementalProfiler
	// scratch backs the serial tick's profile and snapshot buffers; the
	// parallel path keeps one scratch per worker.
	scratch       imputeScratch
	workerScratch []imputeScratch
	// Tick-owned result buffers, handed to the caller and valid until the
	// next Tick: the completed row, the per-stream results, the missing
	// indices, and the serial path's reference-index scratch.
	out     []float64
	results []*Result
	missing []int
	refIdx  []int
	// tick counts Tick calls; unlike the exported (caller-resettable)
	// Stats.Ticks it is private, so cache invalidation below can rely on it
	// increasing monotonically.
	tick int
	// selCache shares anchor selections within a tick: the dissimilarity
	// profile depends only on the reference set, never on the target, so
	// missing streams with identical reference sets reuse one profile +
	// selection and only aggregate their own anchor values (O(k) each).
	// Entries [0:selCacheLen) are valid for tick selCacheTick.
	selCache     []anchorCacheEntry
	selCacheLen  int
	selCacheTick int
	// Parallel tick state: one job per distinct reference set, the target
	// streams mapped onto those jobs, and the persistent pool feeding the
	// jobs to workers. poolMu guards the pool's lifecycle (start, dispatch,
	// Close) so Close is idempotent and safe to call while a Tick is
	// mid-dispatch.
	jobs    []tickJob
	targets []tickTarget
	poolMu  sync.Mutex
	pool    *tickPool
	// Columnar batch state, reused across TickColumns calls: the completed
	// output columns, the per-tick result rows, the per-tick missing counts,
	// the gather scratch for ticks that need the scalar path, and TickBatch's
	// row→column transpose scratch.
	colOut         Columns
	colRes         [][]*Result
	missingPerTick []int32
	rowScratch     []float64
	batchCols      Columns
	// Stats accumulates counters for observability.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Ticks            int // rows consumed
	Imputations      int // TKCM imputations performed
	ColdStartFills   int // missing values filled by cold-start carry-forward
	ReferenceErrors  int // ticks where a stream lacked d usable references
	InsufficientHist int // imputations skipped due to a short window
}

// NewEngine creates a continuous-imputation engine over the named streams.
// refs maps stream name to its ordered candidate reference series; streams
// without an entry get a correlation-ranked reference set lazily on their
// first missing value (RankCandidates).
func NewEngine(cfg Config, names []string, refs map[string]ReferenceSet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if refs == nil {
		refs = make(map[string]ReferenceSet)
	}
	e := &Engine{
		cfg:  cfg,
		w:    window.New(cfg.WindowLength, names...),
		refs: refs,
		last: make([]float64, len(names)),
	}
	switch cfg.engineProfilerKind() {
	case ProfilerFFT:
		e.prof = FFTProfiler{}
	case ProfilerIncremental:
		e.inc = NewIncrementalProfiler(cfg.PatternLength, len(names), cfg.WindowLength)
		e.inc.SetEager(cfg.EagerProfiler)
		e.inc.SetFloat32(cfg.Float32Profiles)
		e.prof = e.inc
	default:
		e.prof = NaiveProfiler{}
	}
	for i := range e.last {
		e.last[i] = math.NaN()
	}
	return e, nil
}

// Window exposes the engine's streaming window (read-mostly; imputers write
// the current slot).
func (e *Engine) Window() *window.Window { return e.w }

// Config returns the engine's TKCM configuration.
func (e *Engine) Config() Config { return e.cfg }

// Profiler returns the resolved pattern-extraction strategy the engine runs.
func (e *Engine) Profiler() Profiler { return e.prof }

// Seq returns the number of rows the engine has ingested over its lifetime —
// the sequence number of the last applied row (0 for a fresh engine). Unlike
// the caller-resettable Stats.Ticks it is monotone and preserved exactly by
// Snapshot/RestoreEngine, which is what lets a write-ahead-log replay resume
// precisely where a checkpoint ends.
func (e *Engine) Seq() uint64 { return uint64(e.tick) }

// MemoryBytes estimates the engine's resident heap footprint: the window
// rings (width × WindowLength floats) plus, under the incremental profiler,
// its per-stream histories (2L floats each) and derived aggregates (on the
// order of another window). It is a sizing estimate for residency budgeting
// (shard.Options.ResidentBytes), not an exact accounting.
func (e *Engine) MemoryBytes() int64 {
	win := int64(e.w.Width()) * int64(e.cfg.WindowLength) * 8
	if e.inc != nil {
		return 4 * win
	}
	return win
}

// ValidateRow checks row against the engine's stream width and value domain
// (NaN marks a missing value and is legal; ±Inf never is) without mutating
// any state. It is exactly the precondition Tick enforces before touching
// the window, exposed so a serving layer can write-ahead-log a row knowing
// the engine cannot reject it afterwards (or on crash replay).
func (e *Engine) ValidateRow(row []float64) error {
	if len(row) != e.w.Width() {
		return fmt.Errorf("core: row width %d != stream count %d", len(row), e.w.Width())
	}
	for i, v := range row {
		if math.IsInf(v, 0) {
			return fmt.Errorf("core: row[%d] (stream %q): non-finite measurement %v (use NaN for missing)", i, e.w.Names()[i], v)
		}
	}
	return nil
}

// Tick consumes one row of measurements (one value per stream, NaN =
// missing) and imputes every missing value. It returns the completed row
// (imputed in place of NaN) and the per-stream imputation results for
// streams that required TKCM (nil entries for streams that were present,
// cold-start filled, or imputed with Config.SkipDiagnostics set).
//
// The returned slices are owned by the engine and valid until the next call
// to Tick or TickBatch; callers that retain them across ticks must copy.
// A steady-state tick with no missing values performs no allocations.
//
// With Config.Workers > 1 and several streams missing at once, the
// imputations run concurrently on the engine's persistent worker pool:
// reference sets are resolved up front against the tick's raw row, so a
// value imputed in this tick is never consulted as a reference in the same
// tick (the serial tick permits that cascade for streams at lower indices;
// in practice references must be present at tn anyway for the paper's
// reference-selection rule).
func (e *Engine) Tick(row []float64) ([]float64, []*Result, error) {
	// Validate before mutating any state, so a rejected row leaves the
	// engine exactly as it was (service boundaries retry or drop the row).
	// NaN is the missing-value marker and passes; ±Inf is never a valid
	// measurement and would poison the window aggregates.
	if err := e.ValidateRow(row); err != nil {
		return nil, nil, err
	}
	if e.out == nil {
		e.out = make([]float64, len(row))
		e.results = make([]*Result, len(row))
	}
	e.tickApplied(row, e.out, e.results)
	return e.out, e.results, nil
}

// tickApplied is the post-validation body of Tick: it advances the window and
// profiler state by the (already validated) row and imputes every missing
// value, writing the completed row into out and the per-stream results into
// results. The columnar path calls it for ticks that contain missing values,
// so batched and unbatched ingest run literally the same imputation code.
func (e *Engine) tickApplied(row []float64, out []float64, results []*Result) {
	e.w.Advance(row)
	e.tick++
	e.Stats.Ticks++
	copy(out, row)
	for i := range results {
		results[i] = nil
	}
	missing := e.missing[:0]
	for i, v := range row {
		if math.IsNaN(v) {
			missing = append(missing, i)
			continue
		}
		e.last[i] = v
		e.advanceState(i)
	}
	e.missing = missing
	if len(missing) == 0 {
		return
	}
	if e.cfg.Workers > 1 && len(missing) > 1 {
		e.imputeMissingParallel(missing, out, results)
	} else {
		e.imputeMissingSerial(missing, out, results)
	}
}

// Columns is a stream-major batch of ticks: Columns[i][t] holds stream i's
// measurement at the t-th tick of the batch (NaN = missing). All columns
// must have equal length — the batch's tick count. The layout is the
// transpose of TickBatch's row-major [][]float64 and is what the columnar
// ingest path (TickColumns) consumes without further shuffling.
type Columns [][]float64

// TickColumns ingests a batch of ticks in stream-major layout, producing
// exactly the same state, imputed values, and statistics as ticking the rows
// one by one (bit-identical in every profiler mode). Runs of complete ticks —
// the steady state of a healthy feed — are bulk-appended: one contiguous copy
// per stream into the window ring and the incremental profiler's history,
// skipping all per-tick dispatch; the profiler's demand-driven aggregates
// then catch up across the whole run at the next consult (per-batch catch-up
// instead of per-tick bookkeeping). Ticks containing missing values fall back
// to the scalar tick at their exact position, sharing reference resolution
// and anchor-selection storage across the batch.
//
// It returns the completed columns and the per-tick results (indexed
// [tick][stream], nil entries as in Tick). Both are engine-owned and valid
// until the next Tick/TickBatch/TickColumns call. The whole batch is
// validated up front — on error no state is mutated. A steady-state batch
// with no missing values performs no allocations.
func (e *Engine) TickColumns(cols Columns) (Columns, [][]*Result, error) {
	width := e.w.Width()
	if len(cols) != width {
		return nil, nil, fmt.Errorf("core: %d columns != stream count %d", len(cols), width)
	}
	k := len(cols[0])
	for i, col := range cols {
		if len(col) != k {
			return nil, nil, fmt.Errorf("core: column %d (stream %q) has %d ticks, column 0 has %d", i, e.w.Names()[i], len(col), k)
		}
	}
	for i, col := range cols {
		for t, v := range col {
			if math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("core: batch tick %d: stream %q: non-finite measurement %v (use NaN for missing)", t, e.w.Names()[i], v)
			}
		}
	}
	// Per-tick missing counts, accumulated column by column so every scan is
	// a contiguous pass.
	mpt := e.missingPerTick
	if cap(mpt) < k {
		mpt = make([]int32, k)
	}
	mpt = mpt[:k]
	for t := range mpt {
		mpt[t] = 0
	}
	e.missingPerTick = mpt
	for _, col := range cols {
		col := col[:k:k]
		for t, v := range col {
			if math.IsNaN(v) {
				mpt[t]++
			}
		}
	}
	out := e.colOut
	for len(out) < width {
		out = append(out, nil)
	}
	out = out[:width]
	for i := range out {
		if cap(out[i]) < k {
			out[i] = make([]float64, k)
		}
		out[i] = out[i][:k]
	}
	e.colOut = out
	res := e.colRes
	for len(res) < k {
		res = append(res, nil)
	}
	res = res[:k]
	for t := range res {
		if cap(res[t]) < width {
			res[t] = make([]*Result, width)
		}
		res[t] = res[t][:width]
		for i := range res[t] {
			res[t][i] = nil
		}
	}
	e.colRes = res
	for t := 0; t < k; {
		if mpt[t] == 0 {
			// Maximal run of complete ticks: bulk-append it.
			r := t + 1
			for r < k && mpt[r] == 0 {
				r++
			}
			e.w.AdvanceColumns(cols, t, r)
			e.tick += r - t
			e.Stats.Ticks += r - t
			for i, col := range cols {
				copy(out[i][t:r], col[t:r])
				e.last[i] = col[r-1]
				if e.inc != nil {
					e.inc.AdvanceBulk(i, col[t:r])
				}
			}
			t = r
			continue
		}
		// Tick with missing values: gather its row and run the scalar tick.
		row := e.rowScratch
		if cap(row) < width {
			row = make([]float64, width)
		}
		row = row[:width]
		for i, col := range cols {
			row[i] = col[t]
		}
		e.rowScratch = row
		if e.out == nil {
			e.out = make([]float64, width)
			e.results = make([]*Result, width)
		}
		e.tickApplied(row, e.out, e.results)
		for i := range cols {
			out[i][t] = e.out[i]
		}
		copy(res[t], e.results)
		t++
	}
	return out, res, nil
}

// TickBatch consumes a batch of row-major rows, preserving Tick's semantics
// tick for tick, and returns the completed rows and per-row results (copied
// out of the engine-owned batch buffers, so they stay valid indefinitely).
// It is a compatibility shim over TickColumns: the longest valid prefix of
// rows is transposed into the engine's column scratch and ingested through
// the columnar path, so batched ingest enjoys the bulk-append fast path while
// remaining bit-identical to per-row Tick calls. On a row that fails
// validation it returns the rows completed so far together with the failing
// row's index wrapped in the error, exactly as the historical per-row loop
// did.
func (e *Engine) TickBatch(rows [][]float64) ([][]float64, [][]*Result, error) {
	n := 0
	var rowErr error
	for n < len(rows) {
		if err := e.ValidateRow(rows[n]); err != nil {
			rowErr = fmt.Errorf("core: batch row %d: %w", n, err)
			break
		}
		n++
	}
	width := e.w.Width()
	cols := e.batchCols
	for len(cols) < width {
		cols = append(cols, nil)
	}
	cols = cols[:width]
	for i := range cols {
		if cap(cols[i]) < n {
			cols[i] = make([]float64, n)
		}
		cols[i] = cols[i][:n]
	}
	e.batchCols = cols
	for t := 0; t < n; t++ {
		row := rows[t]
		for i := range cols {
			cols[i][t] = row[i]
		}
	}
	colOut, colRes, err := e.TickColumns(cols)
	if err != nil {
		// Unreachable: the prefix was validated row by row. Surface it
		// defensively instead of masking a bug.
		return nil, nil, err
	}
	outs := make([][]float64, 0, n)
	ress := make([][]*Result, 0, n)
	for t := 0; t < n; t++ {
		outRow := make([]float64, width)
		for i := 0; i < width; i++ {
			outRow[i] = colOut[i][t]
		}
		outs = append(outs, outRow)
		ress = append(ress, append([]*Result(nil), colRes[t]...))
	}
	return outs, ress, rowErr
}

// advanceState feeds stream i's now-final value for the current tick into
// the incremental profiler (no-op for stateless profilers). It must run
// exactly once per stream per tick, after the stream's value is final.
func (e *Engine) advanceState(i int) {
	if e.inc == nil {
		return
	}
	e.inc.Advance(i, e.w.Stream(i).Newest())
}

// imputeMissingSerial is the classic tick: missing streams are imputed in
// index order, so an earlier imputation may serve as a reference value for a
// later stream in the same tick.
func (e *Engine) imputeMissingSerial(missing []int, out []float64, results []*Result) {
	for _, i := range missing {
		val, res, err := e.imputeStream(i)
		switch {
		case err == nil:
			results[i] = res
			out[i] = val
			e.last[i] = val
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// imputeMissingParallel fans the tick's extraction + selection work out
// across the persistent worker pool (started on first use). Reference
// picking, deduplication, stats, cold fills, incremental catch-up and
// contribution caching, value aggregation, and incremental-state advances
// stay serial; only profile assembly and anchor selection — the ~92% phase
// — run concurrently, with exactly one job per distinct reference set
// (targets sharing references share the job). Each worker owns its scratch
// and writes only its own job's selection slot, and the reference
// aggregates are prepared (caught up and cached) before the fan-out, so the
// concurrent profile reads are race-free.
func (e *Engine) imputeMissingParallel(missing []int, out []float64, results []*Result) {
	nJobs := 0
	tgts := e.targets[:0]
	for _, i := range missing {
		refIdx, err := e.pickRefsInto(i, e.refIdx[:0])
		e.refIdx = refIdx
		if err != nil {
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
			e.advanceState(i)
			continue
		}
		j := -1
		for x := 0; x < nJobs; x++ {
			if slices.Equal(e.jobs[x].refIdx, refIdx) {
				j = x
				break
			}
		}
		if j < 0 {
			if nJobs == len(e.jobs) {
				e.jobs = append(e.jobs, tickJob{})
			}
			j = nJobs
			e.jobs[j].refIdx = append(e.jobs[j].refIdx[:0], refIdx...)
			nJobs++
		}
		tgts = append(tgts, tickTarget{stream: i, job: j})
	}
	e.targets = tgts
	if nJobs == 0 {
		return
	}
	if e.inc != nil {
		// Catch up and cache every referenced stream's contribution vector
		// serially, so the workers' ProfileWindow calls are pure reads.
		for j := 0; j < nJobs; j++ {
			e.inc.Prepare(e.jobs[j].refIdx)
		}
	}
	e.dispatch(nJobs)
	for _, t := range tgts {
		i := t.stream
		jb := &e.jobs[t.job]
		err := jb.err
		var val float64
		var res *Result
		if err == nil {
			val, res, err = aggregateWindow(e.cfg, e.w, i, &jb.sel, e.cfg.SkipDiagnostics)
		}
		switch {
		case err == nil:
			e.Stats.Imputations++
			results[i] = res
			out[i] = val
			e.last[i] = val
		case err == ErrInsufficientHistory:
			e.Stats.InsufficientHist++
			out[i] = e.coldFill(i)
		default:
			e.Stats.ReferenceErrors++
			out[i] = e.coldFill(i)
		}
		e.advanceState(i)
	}
}

// pickRefsInto resolves the reference set for the stream at index i into dst
// (reusing its storage), ranking candidates from the retained window on
// first use.
func (e *Engine) pickRefsInto(i int, dst []int) ([]int, error) {
	name := e.w.Names()[i]
	rs, ok := e.refs[name]
	if !ok {
		rs = e.rankFromWindow(name)
		e.refs[name] = rs
	}
	return rs.PickInto(e.w, e.cfg.D, dst)
}

// imputeStream runs TKCM for the stream at index i at the current tick,
// sharing the profile + anchor selection with any earlier imputation of the
// tick that used the same reference set.
func (e *Engine) imputeStream(i int) (float64, *Result, error) {
	refIdx, err := e.pickRefsInto(i, e.refIdx[:0])
	e.refIdx = refIdx
	if err != nil {
		return 0, nil, err
	}
	sel, err := e.cachedSelection(refIdx)
	if err != nil {
		return 0, nil, err
	}
	val, res, err := aggregateWindow(e.cfg, e.w, i, sel, e.cfg.SkipDiagnostics)
	if err != nil {
		return 0, nil, err
	}
	e.Stats.Imputations++
	return val, res, nil
}

// anchorCacheEntry memoizes one reference set's selection for the current
// tick. Sharing is sound because a stream's value at tn is written at most
// once per tick (present values never change; a missing stream is imputed
// once), so a reference set resolves to the same histories wherever it
// appears within the tick.
type anchorCacheEntry struct {
	refIdx []int
	sel    anchorSelection
	err    error
}

// cachedSelection returns the profile + anchor selection for refIdx at the
// current tick, computing and memoizing it on first use.
func (e *Engine) cachedSelection(refIdx []int) (*anchorSelection, error) {
	if e.selCacheTick != e.tick {
		e.selCacheTick = e.tick
		e.selCacheLen = 0
	}
	for x := 0; x < e.selCacheLen; x++ {
		ent := &e.selCache[x]
		if slices.Equal(ent.refIdx, refIdx) {
			return &ent.sel, ent.err
		}
	}
	if e.selCacheLen == len(e.selCache) {
		e.selCache = append(e.selCache, anchorCacheEntry{})
	}
	ent := &e.selCache[e.selCacheLen]
	e.selCacheLen++
	ent.refIdx = append(ent.refIdx[:0], refIdx...)
	ent.err = profileSelectWindow(e.cfg, e.w, refIdx, e.prof, &e.scratch, &ent.sel)
	return &ent.sel, ent.err
}

// coldFill fills a missing value while TKCM is not applicable: it carries
// the last known value forward, falling back to the mean of the present
// values in the current row, then to 0. The cold-start path exists only for
// the first ticks of a stream's life; experiments always warm the window
// before injecting missing blocks.
func (e *Engine) coldFill(i int) float64 {
	e.Stats.ColdStartFills++
	v := e.last[i]
	if !math.IsNaN(v) {
		e.w.SetCurrent(i, v)
		return v
	}
	sum, n := 0.0, 0
	for j := 0; j < e.w.Width(); j++ {
		if j == i {
			continue
		}
		if cv := e.w.Current(j); !math.IsNaN(cv) {
			sum += cv
			n++
		}
	}
	if n > 0 {
		v = sum / float64(n)
	} else {
		v = 0
	}
	e.w.SetCurrent(i, v)
	return v
}

// rankFromWindow builds a correlation-ranked reference set for name from the
// retained window contents.
func (e *Engine) rankFromWindow(name string) ReferenceSet {
	histories := make(map[string][]float64, e.w.Width())
	for j, n := range e.w.Names() {
		histories[n] = e.w.Snapshot(j)
	}
	return RankCandidates(name, histories)
}
