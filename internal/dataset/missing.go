package dataset

import (
	"fmt"

	"tkcm/internal/timeseries"
)

// Block identifies a missing block injected into a series: which series, and
// the erased ground truth at ticks [Start, Start+len(Truth)).
type Block struct {
	Series string
	Start  int
	Truth  []float64
}

// End returns the first tick after the block.
func (b Block) End() int { return b.Start + len(b.Truth) }

// Len returns the number of erased ticks.
func (b Block) Len() int { return len(b.Truth) }

// InjectBlock erases ticks [start, start+length) of the named series in the
// frame (in place) and returns the ground truth. It mirrors the paper's
// experimental protocol: simulate a sensor failure of a given duration and
// impute each value in the block (Sec. 7).
func InjectBlock(f *timeseries.Frame, series string, start, length int) (Block, error) {
	s := f.ByName(series)
	if s == nil {
		return Block{}, fmt.Errorf("dataset: unknown series %q", series)
	}
	if start < 0 || start+length > s.Len() {
		return Block{}, fmt.Errorf("dataset: block [%d,%d) out of range [0,%d)", start, start+length, s.Len())
	}
	truth := s.EraseBlock(start, length)
	return Block{Series: series, Start: start, Truth: truth}, nil
}

// InjectRandomValues erases `count` individual values of the named series at
// deterministic pseudo-random positions within [from, to), returning one
// Block per erased tick. Used by tests that need scattered (non-block)
// missingness.
func InjectRandomValues(f *timeseries.Frame, series string, from, to, count int, seed uint64) ([]Block, error) {
	s := f.ByName(series)
	if s == nil {
		return nil, fmt.Errorf("dataset: unknown series %q", series)
	}
	if from < 0 || to > s.Len() || from >= to {
		return nil, fmt.Errorf("dataset: range [%d,%d) invalid for series of length %d", from, to, s.Len())
	}
	r := newRNG(seed)
	seen := make(map[int]bool)
	var blocks []Block
	for len(blocks) < count {
		pos := from + r.intn(to-from)
		if seen[pos] || s.MissingAt(pos) {
			if len(seen) >= to-from {
				break
			}
			seen[pos] = true
			continue
		}
		seen[pos] = true
		truth := s.EraseBlock(pos, 1)
		blocks = append(blocks, Block{Series: series, Start: pos, Truth: truth})
	}
	return blocks, nil
}
