package dataset

import (
	"go/parser"
	"go/token"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/timeseries"
)

// scenarioTestFrame builds a small complete frame with one target and three
// reference streams carrying distinct seasonal signals.
func scenarioTestFrame(t *testing.T, ticks int) *timeseries.Frame {
	t.Helper()
	mk := func(name string, phase float64) *timeseries.Series {
		v := make([]float64, ticks)
		for i := range v {
			v[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/288+phase) + 0.01*float64(i%7)
		}
		return timeseries.New(name, v)
	}
	return timeseries.NewFrame(mk("s", 0), mk("r1", 0.3), mk("r2", 0.9), mk("r3", 1.7))
}

// scenarioConfigs enumerates one representative config per kind, sized for a
// frame of the given length.
func scenarioConfigs(ticks int) []ScenarioConfig {
	bs, bl := ticks-600, 288
	var cfgs []ScenarioConfig
	for _, kind := range AllScenarioKinds {
		cfgs = append(cfgs, ScenarioConfig{
			Kind: kind, Target: "s", BlockStart: bs, BlockLen: bl,
			RefRate: 0.2, MeanRun: 10, Corr: 0.9, Seed: 42,
		})
	}
	return cfgs
}

// TestScenarioMaskMatchesInjection is the mask-exactness property: every
// declared cell is missing in the frame with its truth preserved, and no
// undeclared cell was erased.
func TestScenarioMaskMatchesInjection(t *testing.T) {
	const ticks = 4 * 288
	for _, cfg := range scenarioConfigs(ticks) {
		t.Run(string(cfg.Kind), func(t *testing.T) {
			f := scenarioTestFrame(t, ticks)
			before := f.Clone()
			mask, err := ApplyScenario(f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mask.Kind != cfg.Kind {
				t.Fatalf("mask kind = %q, want %q", mask.Kind, cfg.Kind)
			}

			// Count and verify declared cells.
			declared := make(map[string]map[int]float64) // series → tick → truth
			record := func(b Block) {
				if declared[b.Series] == nil {
					declared[b.Series] = make(map[int]float64)
				}
				for off, tv := range b.Truth {
					tick := b.Start + off
					if _, dup := declared[b.Series][tick]; dup {
						t.Fatalf("cell %s@%d declared twice", b.Series, tick)
					}
					declared[b.Series][tick] = tv
				}
			}
			record(mask.Target)
			for _, b := range mask.RefBlocks {
				record(b)
			}

			transformed := cfg.Kind == ScenarioRegimeShift || cfg.Kind == ScenarioSeasonalDrift
			for _, s := range f.Series {
				orig := before.ByName(s.Name)
				for tick, v := range s.Values {
					truth, isDeclared := declared[s.Name][tick]
					if isDeclared {
						if !math.IsNaN(v) {
							t.Fatalf("%s: declared cell %s@%d not erased (= %g)", cfg.Kind, s.Name, tick, v)
						}
						if math.IsNaN(truth) {
							t.Fatalf("%s: truth for %s@%d is NaN", cfg.Kind, s.Name, tick)
						}
						if !transformed && truth != orig.Values[tick] {
							t.Fatalf("%s: truth for %s@%d = %g, want original %g",
								cfg.Kind, s.Name, tick, truth, orig.Values[tick])
						}
						continue
					}
					if math.IsNaN(v) {
						t.Fatalf("%s: undeclared cell %s@%d was erased", cfg.Kind, s.Name, tick)
					}
					if !transformed && v != orig.Values[tick] {
						t.Fatalf("%s: untouched cell %s@%d changed: %g → %g",
							cfg.Kind, s.Name, tick, orig.Values[tick], v)
					}
				}
			}
			if got := mask.Target.Len(); got != cfg.BlockLen {
				t.Fatalf("target block length = %d, want %d", got, cfg.BlockLen)
			}
			if dropout := cfg.Kind == ScenarioUniform || cfg.Kind == ScenarioBursty ||
				cfg.Kind == ScenarioCorrelated || cfg.Kind == ScenarioAdversarial; dropout && len(mask.RefBlocks) == 0 {
				t.Fatalf("%s produced zero reference dropout at rate %g", cfg.Kind, cfg.RefRate)
			}
		})
	}
}

// TestScenarioDeterminism: identical seed ⇒ bit-identical frame and mask;
// a different seed must change the dropout kinds' masks.
func TestScenarioDeterminism(t *testing.T) {
	const ticks = 4 * 288
	for _, cfg := range scenarioConfigs(ticks) {
		t.Run(string(cfg.Kind), func(t *testing.T) {
			f1, f2 := scenarioTestFrame(t, ticks), scenarioTestFrame(t, ticks)
			m1, err := ApplyScenario(f1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := ApplyScenario(f2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m1.ErasedCells() != m2.ErasedCells() || len(m1.RefBlocks) != len(m2.RefBlocks) {
				t.Fatalf("same seed, different masks: %d/%d cells, %d/%d blocks",
					m1.ErasedCells(), m2.ErasedCells(), len(m1.RefBlocks), len(m2.RefBlocks))
			}
			for i := range m1.RefBlocks {
				a, b := m1.RefBlocks[i], m2.RefBlocks[i]
				if a.Series != b.Series || a.Start != b.Start || a.Len() != b.Len() {
					t.Fatalf("same seed, block %d differs: %+v vs %+v", i, a, b)
				}
			}
			for _, s := range f1.Series {
				other := f2.ByName(s.Name)
				for tick, v := range s.Values {
					w := other.Values[tick]
					if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
						t.Fatalf("same seed, %s@%d: %g vs %g", s.Name, tick, v, w)
					}
				}
			}
		})
	}

	// A different seed must move the random dropout (not block/adversarial,
	// whose geometry is fully determined by the config).
	for _, kind := range []ScenarioKind{ScenarioUniform, ScenarioBursty, ScenarioCorrelated} {
		cfg := ScenarioConfig{Kind: kind, Target: "s", BlockStart: ticks - 600, BlockLen: 288,
			RefRate: 0.2, MeanRun: 10, Corr: 0.9, Seed: 1}
		f1, f2 := scenarioTestFrame(t, ticks), scenarioTestFrame(t, ticks)
		m1, err := ApplyScenario(f1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 2
		m2, err := ApplyScenario(f2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		same := len(m1.RefBlocks) == len(m2.RefBlocks)
		if same {
			for i := range m1.RefBlocks {
				if m1.RefBlocks[i].Start != m2.RefBlocks[i].Start || m1.RefBlocks[i].Len() != m2.RefBlocks[i].Len() {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: seeds 1 and 2 produced identical dropout", kind)
		}
	}
}

// TestScenarioKeepsAReferencePresent: outside the adversarial kind, no tick
// may end up with zero present reference streams — even at dropout rates
// that would otherwise guarantee it.
func TestScenarioKeepsAReferencePresent(t *testing.T) {
	const ticks = 3 * 288
	for _, kind := range []ScenarioKind{ScenarioUniform, ScenarioBursty, ScenarioCorrelated} {
		t.Run(string(kind), func(t *testing.T) {
			f := scenarioTestFrame(t, ticks)
			cfg := ScenarioConfig{
				Kind: kind, Target: "s", BlockStart: ticks - 400, BlockLen: 100,
				RefRate: 0.95, MeanRun: 50, Corr: 1.0, Seed: 7,
			}
			mask, err := ApplyScenario(f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mask.Adversarial {
				t.Fatalf("%s declared adversarial", kind)
			}
			refs := []string{"r1", "r2", "r3"}
			for tick := 0; tick < ticks; tick++ {
				present := 0
				for _, name := range refs {
					if !f.ByName(name).MissingAt(tick) {
						present++
					}
				}
				if present == 0 {
					t.Fatalf("%s: tick %d has zero present references", kind, tick)
				}
			}
		})
	}

	// The adversarial scenario, by contrast, must produce all-missing ticks
	// across the block — and must say so via the Adversarial flag.
	f := scenarioTestFrame(t, ticks)
	cfg := ScenarioConfig{Kind: ScenarioAdversarial, Target: "s",
		BlockStart: ticks - 400, BlockLen: 100, Seed: 7}
	mask, err := ApplyScenario(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mask.Adversarial {
		t.Fatal("adversarial scenario not flagged adversarial")
	}
	for tick := cfg.BlockStart; tick < cfg.BlockStart+cfg.BlockLen; tick++ {
		for _, name := range []string{"s", "r1", "r2", "r3"} {
			if !f.ByName(name).MissingAt(tick) {
				t.Fatalf("adversarial: %s@%d still present", name, tick)
			}
		}
	}
}

// TestScenarioErrors covers the validation paths.
func TestScenarioErrors(t *testing.T) {
	const ticks = 600
	cases := []ScenarioConfig{
		{Kind: ScenarioBlock, Target: "nope", BlockStart: 10, BlockLen: 5},
		{Kind: ScenarioBlock, Target: "s", BlockStart: -1, BlockLen: 5},
		{Kind: ScenarioBlock, Target: "s", BlockStart: ticks - 2, BlockLen: 5},
		{Kind: ScenarioBlock, Target: "s", BlockStart: 10, BlockLen: 0},
		{Kind: ScenarioKind("martian"), Target: "s", BlockStart: 10, BlockLen: 5},
		{Kind: ScenarioBursty, Target: "s", BlockStart: 10, BlockLen: 5, Refs: []string{"ghost"}},
		{Kind: ScenarioBursty, Target: "s", BlockStart: 10, BlockLen: 5, Refs: []string{"s"}},
	}
	for _, cfg := range cases {
		f := scenarioTestFrame(t, ticks)
		if _, err := ApplyScenario(f, cfg); err == nil {
			t.Fatalf("config %+v: expected error", cfg)
		}
	}
}

// TestRegimeShiftTransformsTail: the regime-shift scenario must change
// values from the shift tick onward (on every stream) and leave the head
// untouched, with the recorded truth matching the transformed data.
func TestRegimeShiftTransformsTail(t *testing.T) {
	const ticks = 4 * 288
	f := scenarioTestFrame(t, ticks)
	before := f.Clone()
	cfg := ScenarioConfig{Kind: ScenarioRegimeShift, Target: "s",
		BlockStart: ticks - 400, BlockLen: 100,
		LevelShift: 1, ScaleShift: 1.5, ShiftAt: ticks / 2, Seed: 3}
	mask, err := ApplyScenario(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		orig := before.ByName(s.Name)
		for tick := 0; tick < cfg.ShiftAt; tick++ {
			if !s.MissingAt(tick) && s.Values[tick] != orig.Values[tick] {
				t.Fatalf("%s@%d changed before the shift", s.Name, tick)
			}
		}
		for tick := cfg.ShiftAt; tick < ticks; tick++ {
			if s.MissingAt(tick) {
				continue
			}
			want := 1 + 1.5*orig.Values[tick]
			if math.Abs(s.Values[tick]-want) > 1e-12 {
				t.Fatalf("%s@%d = %g, want %g", s.Name, tick, s.Values[tick], want)
			}
		}
	}
	// Truth reflects the transformed values.
	for off, tv := range mask.Target.Truth {
		want := 1 + 1.5*before.ByName("s").Values[mask.Target.Start+off]
		if math.Abs(tv-want) > 1e-12 {
			t.Fatalf("truth[%d] = %g, want transformed %g", off, tv, want)
		}
	}
}

// TestSeasonalDriftLagsReferences: after drift, a reference's tail should
// correlate better with its own past than with its aligned original —
// i.e. the references genuinely lag.
func TestSeasonalDriftLagsReferences(t *testing.T) {
	const ticks = 6 * 288
	f := scenarioTestFrame(t, ticks)
	before := f.Clone()
	cfg := ScenarioConfig{Kind: ScenarioSeasonalDrift, Target: "s",
		BlockStart: ticks - 400, BlockLen: 100, DriftPerDay: 0.25, Seed: 3}
	if _, err := ApplyScenario(f, cfg); err != nil {
		t.Fatal(err)
	}
	// At tick t the drifted reference reads the original at t·(1−0.25): the
	// very end of r1 should match the original ~1.5 days earlier, not itself.
	r1, o1 := f.ByName("r1"), before.ByName("r1")
	tail := ticks - 10
	lagged := int(float64(tail) * 0.75)
	if math.Abs(r1.Values[tail]-o1.Values[lagged]) > 0.2 {
		t.Fatalf("drifted r1@%d = %g, want ≈ original@%d = %g",
			tail, r1.Values[tail], lagged, o1.Values[lagged])
	}
	// The target is never drifted.
	s, os := f.ByName("s"), before.ByName("s")
	for tick := 0; tick < cfg.BlockStart; tick++ {
		if s.Values[tick] != os.Values[tick] {
			t.Fatalf("target drifted at %d", tick)
		}
	}
}

// TestNoGlobalRNGInDataset is the seed-audit regression test: no file of
// this package may import math/rand (whose global source is shared, mutable
// state) or call time.Now (a time-varying seed) — every random choice must
// flow from an explicit seed through the package-local splitmix64 RNG, or
// scenario reproducibility (and the committed accuracy baselines) would
// silently break. Fixed calendar constants (time.Date) remain fine.
func TestNoGlobalRNGInDataset(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2", "crypto/rand":
				t.Errorf("%s imports %q: dataset generators must derive all randomness from explicit seeds (internal/dataset/rng.go)", name, path)
			}
		}
		src, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "time.Now") {
			t.Errorf("%s calls time.Now: dataset generators must not derive seeds or data from wall-clock time", name)
		}
	}
}
