package dataset

import (
	"fmt"
	"math"

	"tkcm/internal/timeseries"
)

// ScenarioKind names a missingness family of the paper grid. Every kind is a
// pure seeded function over a frame: identical inputs produce bit-identical
// scenarios (erased cells, recorded truth, and any value transforms), so
// grid cells are reproducible and the accuracy gate can pin them.
type ScenarioKind string

// The scenario families. ScenarioBlock is the paper's protocol (one
// contiguous sensor failure on the target); the others grow it toward the
// failure modes real deployments see.
const (
	// ScenarioBlock erases one contiguous block of the target series and
	// nothing else — the paper's Sec. 7 protocol.
	ScenarioBlock ScenarioKind = "block"
	// ScenarioUniform adds i.i.d. per-tick dropout on the reference streams
	// on top of the target block.
	ScenarioUniform ScenarioKind = "uniform"
	// ScenarioBursty drops reference values in geometric-length runs
	// (flaky-radio outages) on top of the target block.
	ScenarioBursty ScenarioKind = "bursty"
	// ScenarioCorrelated drops reference values together across streams
	// (shared-uplink outages): a hidden outage process picks ticks, and each
	// reference is missing at an outage tick with the configured probability.
	ScenarioCorrelated ScenarioKind = "correlated"
	// ScenarioRegimeShift rescales and offsets every stream from a shift
	// tick onward (sensor recalibration / process change) before erasing the
	// target block — history before the shift no longer matches the data the
	// block must be imputed from.
	ScenarioRegimeShift ScenarioKind = "regime-shift"
	// ScenarioSeasonalDrift progressively phase-lags every reference stream
	// (clock drift between stations) before erasing the target block, so the
	// cross-stream alignment degrades with time.
	ScenarioSeasonalDrift ScenarioKind = "seasonal-drift"
	// ScenarioAdversarial erases every reference stream across the target's
	// whole missing block — the always-missing-reference worst case. It is
	// the only kind allowed to leave ticks with zero usable references.
	ScenarioAdversarial ScenarioKind = "adversarial"
)

// AllScenarioKinds lists every scenario family in presentation order.
var AllScenarioKinds = []ScenarioKind{
	ScenarioBlock, ScenarioUniform, ScenarioBursty, ScenarioCorrelated,
	ScenarioRegimeShift, ScenarioSeasonalDrift, ScenarioAdversarial,
}

// ScenarioConfig parameterizes one scenario instance. Target and the block
// geometry are required; the per-kind knobs default sensibly when zero. Seed
// is the only randomness source — scenario generation never touches a
// global or time-seeded RNG.
type ScenarioConfig struct {
	Kind ScenarioKind
	// Target is the series whose block is imputed and scored.
	Target string
	// BlockStart/BlockLen is the evaluated missing block on Target.
	BlockStart, BlockLen int
	// Refs are the reference streams eligible for extra dropout or
	// transforms. Empty means every non-target series of the frame.
	Refs []string
	// RefRate is the long-run fraction of reference values dropped
	// (uniform, bursty) or the outage-tick rate (correlated). Default 0.05.
	RefRate float64
	// MeanRun is the mean missing-run length in ticks (bursty). Default 12.
	MeanRun int
	// Corr is the probability a reference is missing at an outage tick
	// (correlated). Default 0.8.
	Corr float64
	// LevelShift and ScaleShift define the regime change
	// v' = LevelShift + ScaleShift·v (regime-shift). Defaults 0.5 and 1.25.
	LevelShift, ScaleShift float64
	// ShiftAt is the first transformed tick (regime-shift). Default: one
	// quarter of the frame before the block.
	ShiftAt int
	// DriftPerDay is the reference phase lag added per elapsed day, as a
	// fraction of a day (seasonal-drift). Default 0.05 (≈ 72 minutes of lag
	// accumulated per day).
	DriftPerDay float64
	// Seed drives every random choice of the scenario.
	Seed uint64
}

// ScenarioMask is the declared injection of a scenario: exactly the cells
// erased, with their ground truth. The erased frame matches the mask cell
// for cell — no generator erases anything it does not declare.
type ScenarioMask struct {
	Kind ScenarioKind
	// Adversarial reports that the scenario intentionally leaves ticks with
	// zero usable reference streams; every other kind guarantees at least
	// one reference is present at every tick.
	Adversarial bool
	// Target is the evaluated block on the target series (truth preserved).
	Target Block
	// RefBlocks are the additional erased runs on reference streams, in
	// deterministic (frame, then tick) order, truth preserved.
	RefBlocks []Block
}

// ErasedCells returns the total number of erased values, target block
// included.
func (m *ScenarioMask) ErasedCells() int {
	n := m.Target.Len()
	for _, b := range m.RefBlocks {
		n += b.Len()
	}
	return n
}

// ApplyScenario applies the configured scenario to the frame in place and
// returns the declared mask. Value transforms (regime-shift,
// seasonal-drift) run before any erasure, so recorded truth reflects the
// transformed data the algorithms are scored against. Identical
// (frame, cfg) inputs produce bit-identical frames and masks.
func ApplyScenario(f *timeseries.Frame, cfg ScenarioConfig) (*ScenarioMask, error) {
	target := f.ByName(cfg.Target)
	if target == nil {
		return nil, fmt.Errorf("dataset: unknown target series %q", cfg.Target)
	}
	if cfg.BlockStart < 0 || cfg.BlockLen <= 0 || cfg.BlockStart+cfg.BlockLen > target.Len() {
		return nil, fmt.Errorf("dataset: block [%d,%d) out of range [0,%d)",
			cfg.BlockStart, cfg.BlockStart+cfg.BlockLen, target.Len())
	}
	refs := cfg.Refs
	if len(refs) == 0 {
		for _, name := range f.Names() {
			if name != cfg.Target {
				refs = append(refs, name)
			}
		}
	}
	for _, name := range refs {
		if f.ByName(name) == nil {
			return nil, fmt.Errorf("dataset: unknown reference series %q", name)
		}
		if name == cfg.Target {
			return nil, fmt.Errorf("dataset: target %q listed as its own reference", name)
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("dataset: scenario needs at least one reference series")
	}

	mask := &ScenarioMask{Kind: cfg.Kind}
	switch cfg.Kind {
	case ScenarioBlock:
		// No extra dropout and no transform.
	case ScenarioUniform:
		rate := defaultF(cfg.RefRate, 0.05)
		grid, err := refDropoutGrid(f, refs, func(r *rng, _ int) int {
			if r.float64() < rate {
				return 1
			}
			return 0
		}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mask.RefBlocks = eraseGrid(f, refs, grid)
	case ScenarioBursty:
		rate := defaultF(cfg.RefRate, 0.05)
		meanRun := cfg.MeanRun
		if meanRun <= 0 {
			meanRun = 12
		}
		// A run starts with probability p at each present tick; run lengths
		// are geometric with the configured mean, giving a long-run missing
		// fraction of ≈ p·meanRun/(1+p·meanRun) = rate.
		p := rate / ((1 - rate) * float64(meanRun))
		grid, err := refDropoutGrid(f, refs, func(r *rng, _ int) int {
			if r.float64() >= p {
				return 0
			}
			return 1 + geometric(r, meanRun)
		}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mask.RefBlocks = eraseGrid(f, refs, grid)
	case ScenarioCorrelated:
		rate := defaultF(cfg.RefRate, 0.03)
		corr := defaultF(cfg.Corr, 0.8)
		n := f.Len()
		outage := make([]bool, n)
		or := newRNG(cfg.Seed ^ 0x6f757461676573) // "outages"
		for t := 0; t < n; t++ {
			outage[t] = or.float64() < rate
		}
		grid, err := refDropoutGrid(f, refs, func(r *rng, t int) int {
			// Every stream's RNG advances at every tick so that a stream's
			// draws do not depend on where outages fall for other ticks.
			u := r.float64()
			if outage[t] && u < corr {
				return 1
			}
			return 0
		}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mask.RefBlocks = eraseGrid(f, refs, grid)
	case ScenarioRegimeShift:
		level := cfg.LevelShift
		scale := cfg.ScaleShift
		if level == 0 && scale == 0 {
			level, scale = 0.5, 1.25
		}
		if scale == 0 {
			scale = 1
		}
		shiftAt := cfg.ShiftAt
		if shiftAt <= 0 {
			shiftAt = cfg.BlockStart - (f.Len()-cfg.BlockStart)/4
			if shiftAt < 0 {
				shiftAt = 0
			}
		}
		for _, s := range f.Series {
			for t := shiftAt; t < s.Len(); t++ {
				if !timeseries.IsMissing(s.Values[t]) {
					s.Values[t] = level + scale*s.Values[t]
				}
			}
		}
	case ScenarioSeasonalDrift:
		drift := defaultF(cfg.DriftPerDay, 0.05)
		// Reference r'(t) = r(t − lag(t)) with lag(t) = drift·t ticks: after
		// one day of ticks the references run drift·day behind the target's
		// clock, after two days twice that — the cross-stream alignment
		// degrades linearly with time. TicksPerDay only names the unit; the
		// lag per tick is drift regardless of sampling rate.
		for _, name := range refs {
			s := f.ByName(name)
			src := make([]float64, len(s.Values))
			copy(src, s.Values)
			for t := range s.Values {
				s.Values[t] = sampleAt(src, float64(t)*(1-drift))
			}
		}
	case ScenarioAdversarial:
		mask.Adversarial = true
		for _, name := range refs {
			s := f.ByName(name)
			lo, hi := cfg.BlockStart, cfg.BlockStart+cfg.BlockLen
			if lo < s.Len() {
				if hi > s.Len() {
					hi = s.Len()
				}
				truth := s.EraseBlock(lo, hi-lo)
				mask.RefBlocks = append(mask.RefBlocks, Block{Series: name, Start: lo, Truth: truth})
			}
		}
	default:
		return nil, fmt.Errorf("dataset: unknown scenario kind %q", cfg.Kind)
	}

	block, err := InjectBlock(f, cfg.Target, cfg.BlockStart, cfg.BlockLen)
	if err != nil {
		return nil, err
	}
	mask.Target = block
	return mask, nil
}

// defaultF returns v, or def when v is zero.
func defaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// geometric draws a geometric sample with the given mean (support 0, 1, …):
// the number of successive heads of a coin with P(heads) = 1 − 1/mean.
func geometric(r *rng, mean int) int {
	if mean <= 1 {
		return 0
	}
	p := 1 - 1/float64(mean)
	n := 0
	for r.float64() < p {
		n++
		if n >= 8*mean { // hard cap: keeps a pathological draw bounded
			break
		}
	}
	return n
}

// refDropoutGrid builds the per-reference missing mask: runAt is called for
// every (stream, tick) with that stream's private seeded RNG and returns the
// run length to start at that tick (0 = keep). The grid is then repaired so
// no tick loses every reference — the non-adversarial invariant — by
// keeping the first masked reference of an all-missing tick. Cells already
// missing in the frame are never claimed by the mask.
func refDropoutGrid(f *timeseries.Frame, refs []string, runAt func(r *rng, t int) int, seed uint64) ([][]bool, error) {
	n := f.Len()
	grid := make([][]bool, len(refs))
	for i, name := range refs {
		grid[i] = make([]bool, n)
		r := newRNG(seed ^ fnvName(name))
		remaining := 0
		for t := 0; t < n; t++ {
			if remaining > 0 {
				remaining--
				grid[i][t] = true
				continue
			}
			if run := runAt(r, t); run > 0 {
				grid[i][t] = true
				remaining = run - 1
			}
		}
	}
	// Cells that are already missing in the frame are not ours to declare.
	series := make([]*timeseries.Series, len(refs))
	for i, name := range refs {
		series[i] = f.ByName(name)
		for t := 0; t < n; t++ {
			if grid[i][t] && series[i].MissingAt(t) {
				grid[i][t] = false
			}
		}
	}
	// Repair: a tick where the injection would leave zero present references
	// keeps its first masked reference (deterministically), so imputation
	// never faces zero usable references outside the adversarial scenario.
	// (A tick where every reference was already missing in the input frame
	// is a pre-existing condition the mask neither causes nor fixes.)
	for t := 0; t < n; t++ {
		anyPresent, firstMasked := false, -1
		for i := range refs {
			if grid[i][t] {
				if firstMasked < 0 {
					firstMasked = i
				}
				continue
			}
			if !series[i].MissingAt(t) {
				anyPresent = true
				break
			}
		}
		if !anyPresent && firstMasked >= 0 {
			grid[firstMasked][t] = false
		}
	}
	return grid, nil
}

// eraseGrid erases the masked cells and returns them as maximal runs per
// stream, in (frame order, tick order), truth preserved.
func eraseGrid(f *timeseries.Frame, refs []string, grid [][]bool) []Block {
	var blocks []Block
	for i, name := range refs {
		s := f.ByName(name)
		t := 0
		for t < len(grid[i]) {
			if !grid[i][t] {
				t++
				continue
			}
			start := t
			for t < len(grid[i]) && grid[i][t] {
				t++
			}
			truth := s.EraseBlock(start, t-start)
			blocks = append(blocks, Block{Series: name, Start: start, Truth: truth})
		}
	}
	return blocks
}

// sampleAt reads src at a fractional position with linear interpolation,
// clamping to the ends. NaN neighbours yield the nearer value.
func sampleAt(src []float64, pos float64) float64 {
	if len(src) == 0 {
		return math.NaN()
	}
	if pos <= 0 {
		return src[0]
	}
	if pos >= float64(len(src)-1) {
		return src[len(src)-1]
	}
	lo := int(pos)
	frac := pos - float64(lo)
	a, b := src[lo], src[lo+1]
	if math.IsNaN(a) {
		return b
	}
	if math.IsNaN(b) {
		return a
	}
	return a*(1-frac) + b*frac
}

// fnvName hashes a stream name (FNV-1a) to derive an independent RNG stream
// per reference series from one scenario seed.
func fnvName(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
