// Package dataset generates the synthetic stand-ins for the paper's four
// evaluation datasets (SBR, SBR-1d, Flights, Chlorine) and provides
// missing-block injection and CSV I/O. Each generator is seeded and
// deterministic; DESIGN.md §2 documents how each substitution preserves the
// structural properties the paper's arguments rest on (seasonality, phase
// shifts, non-linear correlation, sampling rate, scale).
package dataset
