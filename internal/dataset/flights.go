package dataset

import (
	"fmt"
	"math"
	"time"

	"tkcm/internal/timeseries"
)

// FlightsConfig parameterizes the synthetic Flights dataset: per-airport
// counts of airborne departures at 1-minute sampling (paper: 8 series ×
// 8801 ticks ≈ 6 days). The real dataset comes from Behrend & Schüller
// (SSDBM 2014); the generator reproduces its structural properties: a strong
// daily double-peak (morning and evening departure waves), airport-specific
// scale, timezone-like shifts between airports, near-zero night traffic,
// and small count noise.
type FlightsConfig struct {
	// Airports is the number of series (paper: 8).
	Airports int
	// Ticks is the series length at 1-minute sampling (paper: 8801).
	Ticks int
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultFlightsConfig matches the paper's dataset shape.
func DefaultFlightsConfig() FlightsConfig {
	return FlightsConfig{Airports: 8, Ticks: 8801, Seed: 7}
}

const flightsTicksPerDay = 1440 // 1-minute sampling

// Flights generates the synthetic Flights dataset. Series names are
// "a0", "a1", ... Values are non-negative and roughly in 0–80, matching the
// scale of Fig. 9c.
func Flights(cfg FlightsConfig) *timeseries.Frame {
	if cfg.Airports <= 0 || cfg.Ticks <= 0 {
		panic(fmt.Sprintf("dataset: invalid Flights config %+v", cfg))
	}
	r := newRNG(cfg.Seed)
	sampling := timeseries.Sampling{
		Start:    time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC),
		Interval: time.Minute,
	}
	// System-wide demand level: a shared per-day multiplier (weekday vs
	// weekend vs disruption days) interpolated smoothly across day
	// boundaries. It makes an instantaneous reading ambiguous — the same
	// count can be a peak on a quiet day or a shoulder on a busy day —
	// which is exactly the ambiguity a pattern of length l > 1 resolves.
	days := cfg.Ticks/flightsTicksPerDay + 3
	dayLevel := make([]float64, days)
	lvlRNG := newRNG(cfg.Seed ^ 0xfa11)
	for d := range dayLevel {
		dayLevel[d] = 1 + lvlRNG.uniform(-0.35, 0.35)
	}
	demand := func(t int) float64 {
		d := t / flightsTicksPerDay
		frac := float64(t%flightsTicksPerDay) / float64(flightsTicksPerDay)
		return dayLevel[d]*(1-frac) + dayLevel[d+1]*frac
	}
	frame := timeseries.NewFrame()
	frame.Sampling = sampling
	for a := 0; a < cfg.Airports; a++ {
		scale := r.uniform(25, 70)
		// Timezone-like shift: up to ±4 hours relative to airport 0.
		shift := 0
		if a > 0 {
			shift = r.intn(8*60) - 4*60
		}
		morning := r.uniform(7.5, 9.5)   // hour of the morning peak
		evening := r.uniform(16.5, 19)   // hour of the evening peak
		width := r.uniform(1.0, 1.6)     // peak width in hours (narrow: night stays quiet)
		eveningGain := r.uniform(0.7, 1) // evening peak relative height
		noise := newRNG(cfg.Seed ^ (uint64(a)+1)*0x7f31)
		values := make([]float64, cfg.Ticks)
		for t := 0; t < cfg.Ticks; t++ {
			tm := ((t+shift)%flightsTicksPerDay + flightsTicksPerDay) % flightsTicksPerDay
			hour := float64(tm) / 60
			v := scale * (gauss(hour, morning, width) + eveningGain*gauss(hour, evening, width))
			// Broad daytime plateau: traffic continues between the waves.
			v += 0.3 * scale * gauss(hour, 13, 3.2)
			// Shared demand level, seen at this airport's local clock.
			local := t + shift
			if local < 0 {
				local = 0
			}
			v *= demand(local)
			// Small baseline of red-eye traffic plus count noise.
			v += 1.5 + noise.normScaled(1.2)
			if v < 0 {
				v = 0
			}
			values[t] = v
		}
		s := timeseries.New(fmt.Sprintf("a%d", a), values)
		s.Sampling = sampling
		frame.Add(s)
	}
	return frame
}

// gauss is an unnormalized Gaussian bump used to shape the daily departure
// waves; it wraps around midnight.
func gauss(hour, center, width float64) float64 {
	d := math.Abs(hour - center)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}
