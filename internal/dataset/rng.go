package dataset

import "math"

// rng is a small deterministic PRNG (splitmix64) so dataset generation does
// not depend on math/rand ordering guarantees across Go versions; every
// generator derives an independent stream from its seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// uniform returns a uniform value in [lo, hi).
func (r *rng) uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.float64()
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// norm returns a standard normal sample (Box–Muller).
func (r *rng) norm() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// normScaled returns a normal sample with the given standard deviation.
func (r *rng) normScaled(sd float64) float64 { return sd * r.norm() }
