package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"tkcm/internal/timeseries"
)

// WriteCSV writes the frame as CSV: a header row of series names followed by
// one row per tick. Missing values are written as "NaN" (an empty field
// would make a single-column row entirely blank, and encoding/csv skips
// blank lines on read).
func WriteCSV(w io.Writer, f *timeseries.Frame) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	n := f.Len()
	record := make([]string, f.Width())
	for i := 0; i < n; i++ {
		for j, s := range f.Series {
			v := s.Values[i]
			if timeseries.IsMissing(v) {
				record[j] = "NaN"
			} else {
				record[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a frame from CSV in the WriteCSV format. Empty fields and
// the literal strings "NaN", "nan", and "NULL" denote missing values.
func ReadCSV(r io.Reader) (*timeseries.Frame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	cols := make([][]float64, len(header))
	rowNum := 1
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row %d: %w", rowNum, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, header has %d", rowNum, len(record), len(header))
		}
		for j, field := range record {
			v, err := parseValue(field)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", rowNum, header[j], err)
			}
			cols[j] = append(cols[j], v)
		}
		rowNum++
	}
	frame := timeseries.NewFrame()
	for j, name := range header {
		frame.Add(timeseries.New(name, cols[j]))
	}
	return frame, nil
}

func parseValue(field string) (float64, error) {
	switch field {
	case "", "NaN", "nan", "NULL", "null", "NIL", "nil":
		return timeseries.Missing, nil
	}
	return strconv.ParseFloat(field, 64)
}
