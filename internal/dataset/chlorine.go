package dataset

import (
	"fmt"
	"math"
	"time"

	"tkcm/internal/timeseries"
)

// ChlorineConfig parameterizes the synthetic Chlorine dataset. The paper's
// dataset (from the SPIRIT project) is an EPANET simulation of chlorine
// concentration at 166 junctions of a drinking-water network over 4310
// five-minute ticks (15 days); the propagation of chlorinated water through
// the pipes causes each junction to see the source's daily dosing pattern
// *delayed* and *attenuated* — the phase-shift property both papers
// highlight. The generator reproduces exactly that mechanism: a daily
// dosing waveform at the source is propagated to each junction with a
// junction-specific transport delay, attenuation, dispersive smoothing, and
// small sensor noise.
type ChlorineConfig struct {
	// Junctions is the number of series (paper: 166).
	Junctions int
	// Ticks is the series length at 5-minute sampling (paper: 4310).
	Ticks int
	// Seed makes generation deterministic.
	Seed uint64
	// MaxDelayTicks caps the transport delay of the farthest junction
	// (default: one day, 288 ticks).
	MaxDelayTicks int
}

// DefaultChlorineConfig matches the paper's dataset shape.
func DefaultChlorineConfig() ChlorineConfig {
	return ChlorineConfig{Junctions: 166, Ticks: 4310, Seed: 13, MaxDelayTicks: 288}
}

const chlorineTicksPerDay = 288 // 5-minute sampling

// Chlorine generates the synthetic Chlorine dataset. Series names are
// "j0", "j1", ... Values lie in roughly [0, 0.25] mg/L, matching Fig. 9d.
func Chlorine(cfg ChlorineConfig) *timeseries.Frame {
	if cfg.Junctions <= 0 || cfg.Ticks <= 0 {
		panic(fmt.Sprintf("dataset: invalid Chlorine config %+v", cfg))
	}
	if cfg.MaxDelayTicks <= 0 {
		cfg.MaxDelayTicks = chlorineTicksPerDay
	}
	r := newRNG(cfg.Seed)
	sampling := timeseries.Sampling{
		Start:    time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC),
		Interval: 5 * time.Minute,
	}

	// Source dosing pattern: a daily waveform with two injection plateaus
	// (demand-driven dosing), generated long enough to cover the maximum
	// delay, plus slow day-to-day drift.
	srcLen := cfg.Ticks + cfg.MaxDelayTicks
	source := make([]float64, srcLen)
	// Day-to-day dosing level: the utility adjusts the injected chlorine to
	// the forecast demand, so the plateau heights vary across days. Like the
	// SBR weather front, this makes instantaneous readings ambiguous (same
	// residual = strong dose late in decay, or weak dose at the plateau)
	// while a multi-hour pattern is not.
	days := srcLen/chlorineTicksPerDay + 2
	doseLevel := make([]float64, days)
	doseRNG := newRNG(cfg.Seed ^ 0xc1)
	for d := range doseLevel {
		doseLevel[d] = 1 + doseRNG.uniform(-0.3, 0.3)
	}
	for t := 0; t < srcLen; t++ {
		day := t / chlorineTicksPerDay
		frac := float64(t%chlorineTicksPerDay) / float64(chlorineTicksPerDay)
		level := doseLevel[day]*(1-frac) + doseLevel[day+1]*frac
		hour := frac * 24
		v := 0.05
		v += level * 0.12 * plateau(hour, 6, 10)  // morning demand dosing
		v += level * 0.09 * plateau(hour, 17, 21) // evening demand dosing
		source[t] = v
	}

	frame := timeseries.NewFrame()
	frame.Sampling = sampling
	for j := 0; j < cfg.Junctions; j++ {
		// Network distance is spread over the junctions by a golden-ratio
		// sequence (not sorted by index, not uniform-random): nearby
		// junction indices end up at materially different delays, so no
		// reference is a near-instantaneous copy of its target — the
		// phase-shift property of the real EPANET data. A uniform draw
		// occasionally places two junctions within minutes of each other,
		// which would silently restore the linear correlation (DESIGN.md §2).
		dist := 0.05 + 0.95*math.Mod(float64(j)*0.6180339887498949+r.float64()*0.01, 1)
		delay := int(dist * float64(cfg.MaxDelayTicks))
		atten := 1 - 0.5*dist // farther junctions see weaker residual
		// Junction-specific demand mixing: the morning and evening dosing
		// waves attenuate differently along different paths, so junctions
		// are not plain scaled copies of one another.
		mixM := r.uniform(0.7, 1.3)
		mixE := r.uniform(0.7, 1.3)
		smooth := 1 + int(4*dist)
		noise := newRNG(cfg.Seed ^ (uint64(j)+1)*0x2b)
		// Junction-local demand: a slow, independent mean-reverting walk
		// (±~10%) modelling local consumption. It keeps any junction from
		// being an exact delayed-linear function of the others, so lagged
		// regression accumulates error over long gaps while pattern
		// matching only pays the walk's spread.
		local := make([]float64, cfg.Ticks)
		{
			lw := newRNG(cfg.Seed ^ (uint64(j)+7)*0x91)
			level := 0.0
			for t := 0; t < cfg.Ticks; t++ {
				if t%12 == 0 { // hourly steps
					level += -0.05*level + lw.normScaled(0.012)
					if level > 0.15 {
						level = 0.15
					}
					if level < -0.15 {
						level = -0.15
					}
				}
				local[t] = level
			}
		}
		values := make([]float64, cfg.Ticks)
		for t := 0; t < cfg.Ticks; t++ {
			// Dispersive smoothing: moving average over the delayed source.
			sum := 0.0
			for w := 0; w < smooth; w++ {
				idx := t + cfg.MaxDelayTicks - delay - w
				if idx < 0 {
					idx = 0
				}
				sum += source[idx]
			}
			v := atten * sum / float64(smooth)
			// Re-shape by the junction's demand mix: emphasize or damp the
			// morning vs evening wave at the *local* (delayed) clock.
			localHour := math.Mod((float64(t-delay)/float64(chlorineTicksPerDay)*24)+48, 24)
			v *= 1 + 0.25*(mixM-1)*plateau(localHour, 6, 10) + 0.25*(mixE-1)*plateau(localHour, 17, 21)
			v *= 1 + local[t]
			v += noise.normScaled(0.0025)
			if v < 0 {
				v = 0
			}
			values[t] = v
		}
		s := timeseries.New(fmt.Sprintf("j%d", j), values)
		s.Sampling = sampling
		frame.Add(s)
	}
	return frame
}

// plateau is a smooth bump that is ≈1 between rise and fall (hours) and ≈0
// elsewhere, with soft half-hour shoulders; it wraps around midnight.
func plateau(hour, rise, fall float64) float64 {
	const sharp = 4.0
	up := sigmoid(sharp * hourDiff(hour, rise))
	down := sigmoid(sharp * hourDiff(fall, hour))
	return up * down
}

// hourDiff returns the signed circular distance a−b in hours, in [−12, 12).
func hourDiff(a, b float64) float64 {
	d := math.Mod(a-b+36, 24) - 12
	return d
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
