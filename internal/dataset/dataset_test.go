package dataset

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

func TestSBRShape(t *testing.T) {
	cfg := SBRConfig{Stations: 4, Ticks: 3 * 288, Seed: 1, NoiseSD: 0.25}
	f := SBR(cfg)
	if f.Width() != 4 || f.Len() != 3*288 {
		t.Fatalf("shape %dx%d", f.Width(), f.Len())
	}
	if f.ByName("s0") == nil || f.ByName("s3") == nil {
		t.Fatal("station names wrong")
	}
	if f.Sampling.TicksPerDay() != 288 {
		t.Fatalf("sampling = %v, want 5-minute", f.Sampling.Interval)
	}
	for _, s := range f.Series {
		if !s.Complete() {
			t.Fatalf("generator emitted missing values in %s", s.Name)
		}
	}
}

func TestSBRDeterministic(t *testing.T) {
	cfg := SBRConfig{Stations: 3, Ticks: 500, Seed: 7, NoiseSD: 0.1}
	a := SBR(cfg)
	b := SBR(cfg)
	for i, s := range a.Series {
		if !reflect.DeepEqual(s.Values, b.Series[i].Values) {
			t.Fatalf("series %s not deterministic", s.Name)
		}
	}
	c := SBR(SBRConfig{Stations: 3, Ticks: 500, Seed: 8, NoiseSD: 0.1})
	if reflect.DeepEqual(a.Series[0].Values, c.Series[0].Values) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestSBRDailyCycle: the diurnal pattern must dominate — autocorrelation at
// one day high, at half a day low.
func TestSBRDailyCycle(t *testing.T) {
	f := SBR(SBRConfig{Stations: 2, Ticks: 10 * 288, Seed: 3, NoiseSD: 0.1})
	s := f.Series[0].Values
	day := stats.Autocorrelation(s, 288)
	half := stats.Autocorrelation(s, 144)
	if day < 0.6 {
		t.Fatalf("1-day autocorrelation = %v, want high", day)
	}
	if half >= day {
		t.Fatalf("half-day autocorrelation %v not below 1-day %v", half, day)
	}
}

// TestSBRStationsCorrelated: non-shifted stations must be strongly linearly
// correlated (the SBR regime of the paper).
func TestSBRStationsCorrelated(t *testing.T) {
	f := SBR(SBRConfig{Stations: 3, Ticks: 6 * 288, Seed: 1, NoiseSD: 0.25})
	rho := stats.Pearson(f.Series[0].Values, f.Series[1].Values)
	if rho < 0.9 {
		t.Fatalf("ρ(s0, s1) = %v, want ≥ 0.9 on non-shifted SBR", rho)
	}
}

// TestSBR1dShiftsAllStations: SBR-1d shifts every station by its own amount
// (Sec. 7.1), lowering the linear correlation between station pairs.
func TestSBR1dShiftsAllStations(t *testing.T) {
	cfg := SBRConfig{Stations: 4, Ticks: 6 * 288, Seed: 1, NoiseSD: 0.25}
	plain := SBR(cfg)
	shifted := SBR1d(cfg)
	moved := 0
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(plain.Series[i].Values, shifted.Series[i].Values) {
			moved++
		}
	}
	if moved != 4 {
		t.Fatalf("SBR-1d shifted %d of 4 stations, want all", moved)
	}
	// The average pairwise correlation must drop relative to plain SBR.
	avg := func(f func(i, j int) float64) float64 {
		sum, n := 0.0, 0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				sum += f(i, j)
				n++
			}
		}
		return sum / float64(n)
	}
	rhoPlain := avg(func(i, j int) float64 {
		return stats.Pearson(plain.Series[i].Values, plain.Series[j].Values)
	})
	rhoShift := avg(func(i, j int) float64 {
		return stats.Pearson(shifted.Series[i].Values, shifted.Series[j].Values)
	})
	if rhoShift >= rhoPlain {
		t.Fatalf("shifting must lower mean pairwise correlation: %v → %v", rhoPlain, rhoShift)
	}
}

func TestFlightsShape(t *testing.T) {
	f := Flights(DefaultFlightsConfig())
	if f.Width() != 8 || f.Len() != 8801 {
		t.Fatalf("shape %dx%d, want 8x8801 (paper)", f.Width(), f.Len())
	}
	for _, s := range f.Series {
		lo, hi := stats.MinMax(s.Values)
		if lo < 0 {
			t.Fatalf("%s has negative flight count %v", s.Name, lo)
		}
		if hi < 10 || hi > 120 {
			t.Fatalf("%s peak %v outside the plausible 10–120 range", s.Name, hi)
		}
	}
}

// TestFlightsDailyDoublePeak: within one day there must be two distinct
// departure waves (a morning and an evening peak with a midday dip).
func TestFlightsDailyDoublePeak(t *testing.T) {
	f := Flights(FlightsConfig{Airports: 1, Ticks: 1440, Seed: 7})
	s := f.Series[0].Values
	hourMean := make([]float64, 24)
	for h := 0; h < 24; h++ {
		hourMean[h] = stats.Mean(s[h*60 : (h+1)*60])
	}
	morning := hourMean[8] + hourMean[9]
	midday := hourMean[12] + hourMean[13]
	evening := hourMean[17] + hourMean[18]
	night := hourMean[2] + hourMean[3]
	if !(morning > midday && evening > midday) {
		t.Fatalf("no double peak: morning=%v midday=%v evening=%v", morning, midday, evening)
	}
	if night > midday {
		t.Fatalf("night traffic %v above midday %v", night, midday)
	}
}

func TestChlorineShape(t *testing.T) {
	f := Chlorine(ChlorineConfig{Junctions: 12, Ticks: 600, Seed: 13, MaxDelayTicks: 288})
	if f.Width() != 12 || f.Len() != 600 {
		t.Fatalf("shape %dx%d", f.Width(), f.Len())
	}
	for _, s := range f.Series {
		lo, hi := stats.MinMax(s.Values)
		if lo < 0 || hi > 0.5 {
			t.Fatalf("%s range [%v, %v] outside [0, 0.5] mg/L", s.Name, lo, hi)
		}
	}
}

// TestChlorinePhaseShift: two junctions must see the dosing pattern at
// different delays — the cross-correlation of a pair must peak at a nonzero
// lag for at least one pair (the phase-shift property).
func TestChlorinePhaseShift(t *testing.T) {
	f := Chlorine(ChlorineConfig{Junctions: 6, Ticks: 5 * 288, Seed: 13, MaxDelayTicks: 288})
	foundShift := false
	a := f.Series[0].Values
	for j := 1; j < 6 && !foundShift; j++ {
		b := f.Series[j].Values
		zero := stats.Pearson(a, b)
		for lag := 12; lag <= 96; lag += 12 {
			if stats.Pearson(a[lag:], b[:len(b)-lag]) > zero+0.05 ||
				stats.Pearson(a[:len(a)-lag], b[lag:]) > zero+0.05 {
				foundShift = true
				break
			}
		}
	}
	if !foundShift {
		t.Fatal("no junction pair shows a lagged correlation peak — phase shifts missing")
	}
}

func TestInjectBlock(t *testing.T) {
	f := SBR(SBRConfig{Stations: 2, Ticks: 600, Seed: 1, NoiseSD: 0.1})
	orig := append([]float64(nil), f.ByName("s0").Values...)
	b, err := InjectBlock(f, "s0", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 50 || b.End() != 150 || b.Series != "s0" {
		t.Fatalf("block meta wrong: %+v", b)
	}
	if !reflect.DeepEqual(b.Truth, orig[100:150]) {
		t.Fatal("truth does not match erased values")
	}
	s := f.ByName("s0")
	for i := 100; i < 150; i++ {
		if !s.MissingAt(i) {
			t.Fatalf("tick %d not erased", i)
		}
	}
	if s.MissingAt(99) || s.MissingAt(150) {
		t.Fatal("erase leaked outside the block")
	}
	if _, err := InjectBlock(f, "nope", 0, 1); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := InjectBlock(f, "s0", 590, 20); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestInjectRandomValues(t *testing.T) {
	f := SBR(SBRConfig{Stations: 2, Ticks: 600, Seed: 1, NoiseSD: 0.1})
	blocks, err := InjectRandomValues(f, "s1", 100, 500, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 25 {
		t.Fatalf("injected %d, want 25", len(blocks))
	}
	s := f.ByName("s1")
	if s.CountMissing() != 25 {
		t.Fatalf("missing = %d, want 25", s.CountMissing())
	}
	for _, b := range blocks {
		if b.Start < 100 || b.Start >= 500 || b.Len() != 1 {
			t.Fatalf("bad block %+v", b)
		}
	}
	if _, err := InjectRandomValues(f, "zz", 0, 10, 1, 1); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := InjectRandomValues(f, "s1", 50, 10, 1, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := timeseries.NewFrame(
		timeseries.New("a", []float64{1.5, timeseries.Missing, -3}),
		timeseries.New("b", []float64{0, 2.25, timeseries.Missing}),
	)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), f.Names()) {
		t.Fatalf("names = %v", back.Names())
	}
	for i, s := range f.Series {
		for j, want := range s.Values {
			got := back.Series[i].Values[j]
			if timeseries.IsMissing(want) != timeseries.IsMissing(got) {
				t.Fatalf("missing mismatch at (%d,%d)", i, j)
			}
			if !timeseries.IsMissing(want) && got != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestCSVRoundTripProperty round-trips random frames.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(vals []float64, missingMask uint16) bool {
		if len(vals) == 0 {
			return true
		}
		n := len(vals)
		if n > 16 {
			n = 16
			vals = vals[:16]
		}
		col := make([]float64, n)
		copy(col, vals)
		for i := range col {
			if math.IsNaN(col[i]) || math.IsInf(col[i], 0) {
				col[i] = 1
			}
			if missingMask&(1<<i) != 0 {
				col[i] = timeseries.Missing
			}
		}
		frame := timeseries.NewFrame(timeseries.New("x", col))
		var buf bytes.Buffer
		if err := WriteCSV(&buf, frame); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		got := back.Series[0].Values
		for i := range col {
			if timeseries.IsMissing(col[i]) != timeseries.IsMissing(got[i]) {
				return false
			}
			if !timeseries.IsMissing(col[i]) && got[i] != col[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := "a,b\n1,NaN\nNULL,2\nnil,3\n"
	f, err := ReadCSV(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	a, b := f.ByName("a"), f.ByName("b")
	if a.At(0) != 1 || !a.MissingAt(1) || !a.MissingAt(2) {
		t.Fatalf("a = %v", a.Values)
	}
	if !b.MissingAt(0) || b.At(1) != 2 || b.At(2) != 3 {
		t.Fatalf("b = %v", b.Values)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a\nxyz\n")); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("float64 out of range: %v", v)
		}
		u := r.uniform(-2, 3)
		if u < -2 || u >= 3 {
			t.Fatalf("uniform out of range: %v", u)
		}
		n := r.intn(7)
		if n < 0 || n >= 7 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
	if newRNG(1).intn(0) != 0 {
		t.Fatal("intn(0) must be 0")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := newRNG(123)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ≈ 1", variance)
	}
}
