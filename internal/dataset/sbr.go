package dataset

import (
	"fmt"
	"math"
	"time"

	"tkcm/internal/timeseries"
)

// SBRConfig parameterizes the synthetic SBR weather-station dataset: 5-minute
// temperature measurements from a network of stations in the same valley
// (see DESIGN.md §2 for the substitution rationale). Stations share a daily
// cycle, an annual cycle, and a smooth weather-front component; each station
// adds its own amplitude, offset, and small idiosyncratic noise, so stations
// are strongly linearly correlated — the paper's non-shifted regime.
type SBRConfig struct {
	// Stations is the number of weather stations (the paper's SBR network
	// has >130; experiments use a handful of series).
	Stations int
	// Ticks is the number of 5-minute measurements per station
	// (105120 = 1 year).
	Ticks int
	// Seed makes generation deterministic.
	Seed uint64
	// NoiseSD is the standard deviation of the per-measurement noise in °C.
	NoiseSD float64
	// MaxShiftTicks, when positive, circularly shifts every station by a
	// per-station deterministic amount up to this many ticks. SBR-1d uses
	// 288 (one day at 5-minute sampling), reproducing the paper's SBR-1d
	// construction: each series gets its own shift, so the shift of a
	// reference *relative to the target* follows a triangular distribution
	// peaked at zero and extending to ±one day.
	MaxShiftTicks int
}

// DefaultSBRConfig returns a 10-station, 1-year configuration.
func DefaultSBRConfig() SBRConfig {
	return SBRConfig{Stations: 10, Ticks: 105120, Seed: 1, NoiseSD: 0.25}
}

// ticksPerDay at 5-minute sampling.
const sbrTicksPerDay = 288

// SBR generates the synthetic SBR dataset. Station names are "s0", "s1", ...
// Temperatures span roughly −10…+30 °C over the year with a daily swing of
// several degrees, matching the paper's reported range in spirit.
func SBR(cfg SBRConfig) *timeseries.Frame {
	if cfg.Stations <= 0 || cfg.Ticks <= 0 {
		panic(fmt.Sprintf("dataset: invalid SBR config %+v", cfg))
	}
	r := newRNG(cfg.Seed)
	sampling := timeseries.Sampling{
		Start:    time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
		Interval: 5 * time.Minute,
	}

	// Shared components.
	ticksPerYear := 365 * sbrTicksPerDay
	// Weather front: a smooth mean-reverting random walk shared by all
	// stations, updated hourly and linearly interpolated between updates.
	// The front is what makes single-point matching ambiguous: an
	// instantaneous reading cannot tell a warm front at night from a cool
	// afternoon, while a 6-hour pattern (l = 72) can — the mechanism behind
	// the paper's Fig. 11/12.
	front := make([]float64, cfg.Ticks)
	{
		const stepEvery = 12 // hourly at 5-min ticks
		level := 0.0
		prev := 0.0
		for t := 0; t < cfg.Ticks; t += stepEvery {
			prev = level
			level += -0.01*level + r.normScaled(0.35)
			end := t + stepEvery
			if end > cfg.Ticks {
				end = cfg.Ticks
			}
			for i := t; i < end; i++ {
				frac := float64(i-t) / float64(stepEvery)
				front[i] = prev*(1-frac) + level*frac
			}
		}
	}
	// Fast weather: gusts and passing clouds shared by all stations, with a
	// ~1-hour correlation time. On SBR-1d this is what penalizes a linear
	// readout from a reference that is misaligned by even a fraction of an
	// hour, while pattern matching — which aligns situations on the
	// references' own clocks — is unaffected.
	fast := make([]float64, cfg.Ticks)
	{
		fr := newRNG(cfg.Seed ^ 0xfa57)
		level := 0.0
		for t := 0; t < cfg.Ticks; t++ {
			level += -level/12 + fr.normScaled(0.2)
			fast[t] = level
		}
	}

	frame := timeseries.NewFrame()
	frame.Sampling = sampling
	for st := 0; st < cfg.Stations; st++ {
		// Station-specific climate: altitude offset and amplitude scaling.
		offset := r.uniform(-2, 2)
		dailyAmp := r.uniform(3.5, 5.5)
		annualAmp := r.uniform(8, 11)
		frontGain := r.uniform(0.8, 1.2)
		// Saturation of the front response: valley stations cap cold
		// snaps, exposed ridges amplify them. The response is therefore a
		// station-specific *non-linear* function of the shared front —
		// pattern matching transfers it across stations (matching front
		// trajectories match responses), linear regression cannot.
		frontCap := r.uniform(1.5, 6)
		noise := newRNG(cfg.Seed ^ (uint64(st)+1)*0x9e37)
		values := make([]float64, cfg.Ticks)
		for t := 0; t < cfg.Ticks; t++ {
			day := 2 * math.Pi * float64(t%sbrTicksPerDay) / float64(sbrTicksPerDay)
			year := 2 * math.Pi * float64(t%ticksPerYear) / float64(ticksPerYear)
			v := 10 + offset
			// Annual cycle peaking mid-July.
			v += annualAmp * math.Sin(year-math.Pi/2)
			// Skewed diurnal cycle (fast morning warm-up, slow evening
			// cool-down): several harmonics, so a time shift of the curve is
			// NOT representable as a linear combination of a few shifted
			// copies — the property that separates TKCM from the linear
			// methods on SBR-1d (see Sec. 5.1 of the paper).
			phase := day - 2*math.Pi*14/24 + math.Pi/2
			v += dailyAmp * (math.Sin(phase) + 0.45*math.Sin(2*phase+0.8) + 0.25*math.Sin(3*phase+1.9))
			v += frontGain * frontCap * math.Tanh(front[t]/frontCap)
			v += fast[t]
			v += noise.normScaled(cfg.NoiseSD)
			values[t] = v
		}
		s := timeseries.New(fmt.Sprintf("s%d", st), values)
		s.Sampling = sampling
		if cfg.MaxShiftTicks > 0 {
			// Deterministic per-station shift, stratified over
			// [0, MaxShiftTicks) so every pair of stations ends up with a
			// distinct relative shift of at least ~MaxShiftTicks/Stations.
			// A plain uniform draw occasionally puts two stations within
			// minutes of each other, which silently restores the linear
			// correlation the SBR-1d construction is meant to destroy (see
			// DESIGN.md §2).
			shiftRNG := newRNG(cfg.Seed ^ 0xdead ^ (uint64(st)+1)*0x51ab)
			stride := cfg.MaxShiftTicks / cfg.Stations
			if stride < 1 {
				stride = 1
			}
			delta := st*stride + shiftRNG.intn(stride/3+1)
			s = s.Shift(delta % cfg.MaxShiftTicks)
		}
		frame.Add(s)
	}
	return frame
}

// SBR1d generates the paper's SBR-1d dataset: the SBR generator with every
// station circularly shifted by its own deterministic random amount of up to
// one day (288 ticks at 5-minute sampling), exactly as in Sec. 7.1. Relative
// shifts between a series and its references are therefore mostly a few
// hours (triangular distribution), which lowers the linear correlation
// without severing the shared weather information.
func SBR1d(cfg SBRConfig) *timeseries.Frame {
	cfg.MaxShiftTicks = sbrTicksPerDay
	return SBR(cfg)
}
