package dtw

import (
	"fmt"
	"math"
)

// Distance returns the dynamic time warping distance between a and b with
// squared-difference local cost, taking the square root of the accumulated
// cost (so Distance(a, a) = 0 and the value is commensurable with the L2
// pattern dissimilarity). band < 0 disables the Sakoe–Chiba constraint;
// band = 0 forces the diagonal (Euclidean alignment); band > 0 allows
// |i − j| ≤ band.
//
// It returns +Inf when either sequence is empty or the band makes the end
// state unreachable.
func Distance(a, b []float64, band int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if band < 0 {
		band = n + m // effectively unconstrained
	}
	// The band must at least cover the length difference or no warping path
	// reaches (n-1, m-1).
	if d := n - m; d < 0 {
		d = -d
		if band < d {
			return math.Inf(1)
		}
	} else if band < d {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		curr[0] = inf
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		for j := 1; j < lo; j++ {
			curr[j] = inf
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			curr[j] = cost + best
		}
		for j := hi + 1; j <= m; j++ {
			curr[j] = inf
		}
		prev, curr = curr, prev
	}
	return math.Sqrt(prev[m])
}

// PatternDistance compares two equally shaped multi-row patterns (one row
// per reference series, as in the paper's Def. 1) by summing the squared DTW
// distances of corresponding rows and taking the square root, mirroring how
// the L2 pattern dissimilarity aggregates rows.
func PatternDistance(a, b [][]float64, band int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dtw: pattern row counts differ: %d != %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := Distance(a[i], b[i], band)
		if math.IsInf(d, 1) {
			return d
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// BestLag estimates the alignment between series s and r: the circular lag
// in [-maxLag, maxLag] that minimizes the mean squared difference between s
// and r shifted by that lag (positive lag means r trails s by lag ticks).
// It is the cheap cross-correlation-style alignment used to pre-align
// shifted series before imputation with l = 1, per the paper's Sec. 8
// proposal. Ties resolve to the smallest |lag|.
func BestLag(s, r []float64, maxLag int) int {
	n := len(s)
	if len(r) < n {
		n = len(r)
	}
	if n == 0 {
		return 0
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	bestLag, bestCost := 0, math.Inf(1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		sum, cnt := 0.0, 0
		for i := 0; i < n; i++ {
			j := i - lag
			if j < 0 || j >= n {
				continue
			}
			if math.IsNaN(s[i]) || math.IsNaN(r[j]) {
				continue
			}
			d := s[i] - r[j]
			sum += d * d
			cnt++
		}
		if cnt == 0 {
			continue
		}
		cost := sum / float64(cnt)
		if cost < bestCost-1e-12 || (math.Abs(cost-bestCost) <= 1e-12 && abs(lag) < abs(bestLag)) {
			bestCost, bestLag = cost, lag
		}
	}
	return bestLag
}

// Align returns a copy of r shifted by the given lag so it lines up with the
// series it was compared against in BestLag (positive lag shifts r later).
// Vacated positions are filled by extending the boundary value.
func Align(r []float64, lag int) []float64 {
	n := len(r)
	out := make([]float64, n)
	for i := range out {
		j := i - lag
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		out[i] = r[j]
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
