package dtw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceIdentity(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := Distance(a, a, -1); d != 0 {
		t.Fatalf("DTW(a, a) = %v, want 0", d)
	}
	if d := Distance(a, a, 0); d != 0 {
		t.Fatalf("banded DTW(a, a) = %v, want 0", d)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if d := Distance(nil, []float64{1}, -1); !math.IsInf(d, 1) {
		t.Fatalf("empty DTW = %v, want +Inf", d)
	}
}

func TestDistanceBandZeroIsEuclidean(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 5}
	want := math.Sqrt(1 + 0 + 4)
	if d := Distance(a, b, 0); math.Abs(d-want) > 1e-12 {
		t.Fatalf("band-0 DTW = %v, want Euclidean %v", d, want)
	}
}

func TestDistanceBandUnreachable(t *testing.T) {
	// Length difference 3 with band 1: no path reaches the corner.
	if d := Distance([]float64{1, 2, 3, 4, 5}, []float64{1, 2}, 1); !math.IsInf(d, 1) {
		t.Fatalf("unreachable band DTW = %v, want +Inf", d)
	}
}

// TestDistanceHandlesShift: DTW of a shifted bump against the original is
// far smaller than the Euclidean distance — the property that makes it a
// candidate dissimilarity for shifted patterns (Sec. 8).
func TestDistanceHandlesShift(t *testing.T) {
	n := 60
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = bump(i, 25)
		b[i] = bump(i, 32) // the same bump, 7 ticks later
	}
	euclid := Distance(a, b, 0)
	warped := Distance(a, b, 10)
	if warped > euclid/4 {
		t.Fatalf("DTW %v not clearly below Euclidean %v on a shifted bump", warped, euclid)
	}
}

func bump(i, center int) float64 {
	d := float64(i - center)
	return math.Exp(-d * d / 18)
}

// TestDistanceSymmetry: DTW is symmetric on equal-length inputs.
func TestDistanceSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randomPair(seed, 20)
		return math.Abs(Distance(a, b, -1)-Distance(b, a, -1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceUpperBoundedByEuclidean: unconstrained DTW never exceeds the
// diagonal (Euclidean) alignment on equal-length inputs.
func TestDistanceUpperBoundedByEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randomPair(seed, 16)
		return Distance(a, b, -1) <= Distance(a, b, 0)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBandMonotonicity: widening the band can only decrease the distance.
func TestBandMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randomPair(seed, 14)
		prev := math.Inf(1)
		for _, band := range []int{0, 1, 2, 4, 8, -1} {
			d := Distance(a, b, band)
			if d > prev+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternDistance(t *testing.T) {
	a := [][]float64{{1, 2, 3}, {0, 0, 0}}
	b := [][]float64{{1, 2, 3}, {0, 0, 0}}
	if d := PatternDistance(a, b, -1); d != 0 {
		t.Fatalf("identical pattern DTW = %v", d)
	}
	c := [][]float64{{1, 2, 4}, {0, 1, 0}}
	if d := PatternDistance(a, c, -1); d <= 0 {
		t.Fatalf("distinct pattern DTW = %v, want > 0", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("row-count mismatch accepted")
		}
	}()
	PatternDistance(a, [][]float64{{1}}, -1)
}

func TestBestLagRecoversShift(t *testing.T) {
	n := 400
	s := make([]float64, n)
	r := make([]float64, n)
	const shift = 17
	for i := 0; i < n; i++ {
		s[i] = math.Sin(2*math.Pi*float64(i)/97) + 0.3*math.Sin(2*math.Pi*float64(i)/41)
		j := i - shift
		r[i] = math.Sin(2*math.Pi*float64(j)/97) + 0.3*math.Sin(2*math.Pi*float64(j)/41)
	}
	if got := BestLag(s, r, 40); got != -shift {
		t.Fatalf("BestLag = %d, want %d (r trails s by %d)", got, -shift, shift)
	}
	// Aligning r by the estimated lag must make the series nearly equal.
	aligned := Align(r, BestLag(s, r, 40))
	worst := 0.0
	for i := 50; i < n-50; i++ {
		if e := math.Abs(aligned[i] - s[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-9 {
		t.Fatalf("aligned residual %v, want ≈ 0", worst)
	}
}

func TestBestLagZeroForAligned(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 4, 3, 2}
	if got := BestLag(s, s, 4); got != 0 {
		t.Fatalf("BestLag(s, s) = %d, want 0", got)
	}
	if got := BestLag(nil, nil, 3); got != 0 {
		t.Fatalf("BestLag on empty = %d, want 0", got)
	}
}

func TestBestLagSkipsMissing(t *testing.T) {
	n := 200
	s := make([]float64, n)
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		s[i] = math.Sin(float64(i) / 7)
		r[i] = math.Sin(float64(i-5) / 7)
	}
	s[10] = math.NaN()
	r[60] = math.NaN()
	if got := BestLag(s, r, 20); got != -5 {
		t.Fatalf("BestLag with NaNs = %d, want -5", got)
	}
}

func TestAlignBoundaries(t *testing.T) {
	r := []float64{1, 2, 3, 4}
	got := Align(r, 2)
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Align(+2) = %v, want %v", got, want)
		}
	}
	got = Align(r, -2)
	want = []float64{3, 4, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Align(-2) = %v, want %v", got, want)
		}
	}
}

func randomPair(seed int64, n int) (a, b []float64) {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%200)/10 - 10
	}
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], b[i] = next(), next()
	}
	return a, b
}
