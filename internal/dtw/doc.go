// Package dtw implements dynamic time warping, the dissimilarity function
// the paper names as future work (Sec. 8): comparing patterns under elastic
// time alignment, and estimating the alignment (lag) between shifted time
// series so that TKCM's accuracy on pre-aligned series with l = 1 can be
// compared against the shifted series with l > 1 — the exact experiment the
// paper proposes.
//
// The implementation is the standard O(n·m) dynamic program with an optional
// Sakoe–Chiba band constraint, operating on one-dimensional sequences; a
// multi-row pattern is compared row by row and aggregated.
package dtw
