// Package linalg implements the small dense linear algebra kernel the
// baseline algorithms need: a row-major Matrix type, centroid decomposition
// via sign-vector iteration (for the CD baseline, Khayati et al.), a
// one-sided Jacobi SVD (for SVD-style truncation checks), and the rank-one
// recursive-least-squares update used by MUSCLES and SPIRIT's AR models.
//
// Only the operations the reproduction needs are provided; this is not a
// general-purpose BLAS.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			row := other.Data[k*other.Cols : (k+1)*other.Cols]
			outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range row {
				outRow[j] += a * b
			}
		}
	}
	return out
}

// MulVec returns m * v as a new slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %d-vector", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns mᵀ * v as a new slice.
func (m *Matrix) TMulVec(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d ᵀ * %d-vector", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		vi := v[i]
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out
}

// Sub subtracts other from m in place and returns m.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: shape mismatch in Sub")
	}
	for i := range m.Data {
		m.Data[i] -= other.Data[i]
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equally long vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies v by a in place and returns v.
func Scale(v []float64, a float64) []float64 {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AXPY computes y += a*x in place and returns y.
func AXPY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i := range y {
		y[i] += a * x[i]
	}
	return y
}

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting. It returns false when A is (numerically) singular.
// A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic(fmt.Sprintf("linalg: Solve needs square system, got %dx%d with b of %d", a.Rows, a.Cols, len(b)))
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m.At(r, col)) > math.Abs(m.At(piv, col)) {
				piv = r
			}
		}
		if math.Abs(m.At(piv, col)) < 1e-12 {
			return nil, false
		}
		if piv != col {
			for j := 0; j < n; j++ {
				tmp := m.At(col, j)
				m.Set(col, j, m.At(piv, j))
				m.Set(piv, j, tmp)
			}
			x[col], x[piv] = x[piv], x[col]
		}
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / m.At(col, col)
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for j := col + 1; j < n; j++ {
			s -= m.At(col, j) * x[j]
		}
		x[col] = s / m.At(col, col)
	}
	return x, true
}

// Outer returns the outer product a ⊗ b as a len(a)×len(b) matrix.
func Outer(a, b []float64) *Matrix {
	m := NewMatrix(len(a), len(b))
	for i, ai := range a {
		row := m.Row(i)
		for j, bj := range b {
			row[j] = ai * bj
		}
	}
	return m
}
