package linalg

import "math"

// CentroidComponent is one term of a centroid decomposition X ≈ Σ lᵢ rᵢᵀ:
// a loading vector L (length Rows) and a unit relevance vector R (length
// Cols), together with the centroid value (the norm that was factored out).
type CentroidComponent struct {
	L     []float64 // loading vector, X · r
	R     []float64 // unit relevance vector
	Value float64   // centroid value ‖Xᵀ z‖ at extraction time
}

// SSV computes a (local) maximizing sign vector z ∈ {−1,+1}^rows for
// ‖Xᵀ z‖ using greedy sign flipping: starting from all ones, repeatedly flip
// the single sign whose flip increases the objective most, until no flip
// improves it. This is the standard scalable sign-vector heuristic used by
// centroid decomposition implementations; it terminates because the
// objective strictly increases at every flip and has finitely many states.
func SSV(x *Matrix) []float64 {
	n := x.Rows
	z := make([]float64, n)
	for i := range z {
		z[i] = 1
	}
	if n == 0 || x.Cols == 0 {
		return z
	}
	// v = Xᵀ z, maintained incrementally.
	v := x.TMulVec(z)
	// Objective is ‖v‖²; flipping z_i changes v by -2 z_i x_i (row i).
	for iter := 0; iter < 100*n; iter++ {
		bestGain := 0.0
		bestIdx := -1
		for i := 0; i < n; i++ {
			row := x.Row(i)
			// gain = ‖v - 2 z_i x_i‖² − ‖v‖² = -4 z_i ⟨v, x_i⟩ + 4 ⟨x_i, x_i⟩
			dot := 0.0
			norm := 0.0
			for j, a := range row {
				dot += v[j] * a
				norm += a * a
			}
			gain := -4*z[i]*dot + 4*norm
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		row := x.Row(bestIdx)
		for j, a := range row {
			v[j] -= 2 * z[bestIdx] * a
		}
		z[bestIdx] = -z[bestIdx]
	}
	return z
}

// CentroidDecomposition factors x into at most k rank-one centroid
// components (k ≤ min(rows, cols); pass k <= 0 for the full decomposition).
// Each step finds a maximizing sign vector z, extracts the unit relevance
// vector r = Xᵀz/‖Xᵀz‖ and loading l = X·r, and deflates X ← X − l rᵀ.
func CentroidDecomposition(x *Matrix, k int) []CentroidComponent {
	maxK := x.Rows
	if x.Cols < maxK {
		maxK = x.Cols
	}
	if k <= 0 || k > maxK {
		k = maxK
	}
	work := x.Clone()
	comps := make([]CentroidComponent, 0, k)
	for c := 0; c < k; c++ {
		z := SSV(work)
		r := work.TMulVec(z)
		norm := Norm2(r)
		if norm < 1e-12 {
			break
		}
		Scale(r, 1/norm)
		l := work.MulVec(r)
		comps = append(comps, CentroidComponent{L: l, R: r, Value: norm})
		// Deflate: work ← work − l rᵀ.
		for i := 0; i < work.Rows; i++ {
			row := work.Row(i)
			li := l[i]
			for j := range row {
				row[j] -= li * r[j]
			}
		}
	}
	return comps
}

// ReconstructCentroid sums the rank-one terms of comps into a rows×cols
// matrix (the truncated reconstruction X̃ = Σ lᵢ rᵢᵀ).
func ReconstructCentroid(comps []CentroidComponent, rows, cols int) *Matrix {
	out := NewMatrix(rows, cols)
	for _, c := range comps {
		for i := 0; i < rows; i++ {
			row := out.Row(i)
			li := c.L[i]
			if li == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				row[j] += li * c.R[j]
			}
		}
	}
	return out
}

// JacobiSVD computes the thin singular value decomposition X = U Σ Vᵀ of an
// m×n matrix with m ≥ n using the one-sided Jacobi method. It returns U
// (m×n, orthonormal columns), the singular values in descending order, and
// V (n×n). For m < n, decompose the transpose and swap U and V.
func JacobiSVD(x *Matrix) (u *Matrix, sigma []float64, v *Matrix) {
	if x.Rows < x.Cols {
		vt, s, ut := JacobiSVD(x.T())
		return ut, s, vt
	}
	m, n := x.Rows, x.Cols
	a := x.Clone()
	v = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const tol = 1e-12
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Columns p and q of a.
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					ap := a.At(i, p)
					aq := a.At(i, q)
					alpha += ap * ap
					beta += aq * aq
					gamma += ap * aq
				}
				off += gamma * gamma
				if math.Abs(gamma) < tol*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					ap := a.At(i, p)
					aq := a.At(i, q)
					a.Set(i, p, c*ap-s*aq)
					a.Set(i, q, s*ap+c*aq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off < tol {
			break
		}
	}
	// Column norms are the singular values; normalize to get U.
	sigma = make([]float64, n)
	u = NewMatrix(m, n)
	type pair struct {
		s   float64
		col int
	}
	pairs := make([]pair, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += a.At(i, j) * a.At(i, j)
		}
		pairs[j] = pair{math.Sqrt(s), j}
	}
	// Selection sort descending (n is small in this codebase).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if pairs[j].s > pairs[best].s {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	vOrdered := NewMatrix(n, n)
	for rank, p := range pairs {
		sigma[rank] = p.s
		for i := 0; i < m; i++ {
			if p.s > 1e-300 {
				u.Set(i, rank, a.At(i, p.col)/p.s)
			}
		}
		for i := 0; i < n; i++ {
			vOrdered.Set(i, rank, v.At(i, p.col))
		}
	}
	return u, sigma, vOrdered
}

// RLS is a recursive least squares estimator for a linear model y ≈ θᵀx with
// exponential forgetting factor λ (λ = 1 disables forgetting, the setting
// the paper found best for MUSCLES and SPIRIT in Sec. 7.1).
type RLS struct {
	Theta  []float64 // coefficient estimate
	P      *Matrix   // inverse correlation matrix estimate
	Lambda float64
}

// NewRLS returns an RLS estimator for dim features. delta scales the initial
// inverse correlation matrix P = delta·I; a large delta (e.g. 1e4) encodes an
// uninformative prior.
func NewRLS(dim int, lambda, delta float64) *RLS {
	p := NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		p.Set(i, i, delta)
	}
	return &RLS{Theta: make([]float64, dim), P: p, Lambda: lambda}
}

// Predict returns θᵀx.
func (r *RLS) Predict(x []float64) float64 { return Dot(r.Theta, x) }

// Update incorporates the observation (x, y) using the standard RLS
// rank-one update.
func (r *RLS) Update(x []float64, y float64) {
	n := len(r.Theta)
	if len(x) != n {
		panic("linalg: RLS feature dimension mismatch")
	}
	// k = P x / (λ + xᵀ P x)
	px := r.P.MulVec(x)
	denom := r.Lambda + Dot(x, px)
	if denom == 0 {
		return
	}
	k := make([]float64, n)
	for i := range k {
		k[i] = px[i] / denom
	}
	err := y - r.Predict(x)
	for i := range r.Theta {
		r.Theta[i] += k[i] * err
	}
	// P = (P − k xᵀ P) / λ
	xp := r.P.TMulVec(x) // xᵀP as a vector (P symmetric in exact arithmetic)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.P.Set(i, j, (r.P.At(i, j)-k[i]*xp[j])/r.Lambda)
		}
	}
	// Re-symmetrize to curb the floating-point drift that otherwise makes P
	// lose positive-definiteness on long runs (λ = 1 never forgets, so the
	// update count is unbounded in streaming use).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (r.P.At(i, j) + r.P.At(j, i)) / 2
			r.P.Set(i, j, avg)
			r.P.Set(j, i, avg)
		}
	}
}
