package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("At/Set wrong")
	}
	if got := m.Row(1); got[2] != 7 {
		t.Fatal("Row wrong")
	}
	if got := m.Col(1); got[0] != 5 || got[1] != 0 {
		t.Fatal("Col wrong")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if e := FromRows(nil); e.Rows != 0 || e.Cols != 0 {
		t.Fatal("empty FromRows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul wrong at (%d,%d): %v", i, j, c.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	a.Mul(FromRows([][]float64{{1, 2}}))
}

func TestMulVecAndTMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if got := m.MulVec([]float64{1, 1}); got[0] != 3 || got[1] != 7 || got[2] != 11 {
		t.Fatalf("MulVec = %v", got)
	}
	if got := m.TMulVec([]float64{1, 1, 1}); got[0] != 9 || got[1] != 12 {
		t.Fatalf("TMulVec = %v", got)
	}
}

func TestSubAndFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	b := FromRows([][]float64{{0, 0}})
	if got := a.Clone().Sub(b).FrobeniusNorm(); got != 5 {
		t.Fatalf("norm = %v, want 5", got)
	}
	if got := a.Clone().Sub(a).FrobeniusNorm(); got != 0 {
		t.Fatalf("self-sub norm = %v, want 0", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatal("Scale wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AXPY wrong")
	}
	o := Outer([]float64{1, 2}, []float64{3, 4, 5})
	if o.Rows != 2 || o.Cols != 3 || o.At(1, 2) != 10 {
		t.Fatalf("Outer wrong: %+v", o)
	}
}

// TestMulVecAgainstTranspose: (Mᵀ)ᵀ·v == M·v and Mᵀ·v via TMulVec agree with
// explicit transpose, on random matrices.
func TestMulVecAgainstTranspose(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMatrix(seed, 5, 3)
		v := []float64{1.5, -2, 0.5}
		w := []float64{1, 2, 3, 4, 5}
		direct := m.MulVec(v)
		viaT := m.T().TMulVec(v)
		for i := range direct {
			if math.Abs(direct[i]-viaT[i]) > 1e-9 {
				return false
			}
		}
		tm := m.TMulVec(w)
		tExplicit := m.T().MulVec(w)
		for i := range tm {
			if math.Abs(tm[i]-tExplicit[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(seed int64, rows, cols int) *Matrix {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		m.Data[i] = float64(state%2001)/100 - 10
	}
	return m
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, ok := Solve(a, []float64{5, 10})
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, ok := Solve(a, []float64{1, 2}); ok {
		t.Fatal("singular system reported solvable")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, ok := Solve(a, []float64{2, 3})
	if !ok || x[0] != 3 || x[1] != 2 {
		t.Fatalf("pivoted solve = %v ok=%v, want [3 2]", x, ok)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	Solve(a, b)
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 5 || b[1] != 10 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square system accepted")
		}
	}()
	Solve(NewMatrix(2, 3), []float64{1, 2})
}

// TestSolveProperty: for random well-conditioned systems, A·x == b.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMatrix(seed, 4, 4)
		// Diagonal boost for conditioning.
		for i := 0; i < 4; i++ {
			a.Set(i, i, a.At(i, i)+25)
		}
		b := []float64{1, -2, 3, 0.5}
		x, ok := Solve(a, b)
		if !ok {
			return false
		}
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
