package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSSVMaximizesObjective compares the greedy sign-vector search against
// exhaustive enumeration on small random matrices: the greedy result must
// reach the global maximum of ‖Xᵀ z‖ often enough to be useful, and must
// always be a local maximum (no single flip improves it).
func TestSSVLocalOptimality(t *testing.T) {
	f := func(seed int64) bool {
		x := randomMatrix(seed, 6, 3)
		z := SSV(x)
		v := x.TMulVec(z)
		base := Dot(v, v)
		// No single flip may improve the objective.
		for i := 0; i < x.Rows; i++ {
			z2 := append([]float64(nil), z...)
			z2[i] = -z2[i]
			v2 := x.TMulVec(z2)
			if Dot(v2, v2) > base+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSSVTrivialCases(t *testing.T) {
	// All-positive rank-one matrix: all-ones is optimal.
	x := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	z := SSV(x)
	for i, zi := range z {
		if zi != z[0] {
			t.Fatalf("sign vector %v not aligned at %d for positively correlated rows", z, i)
		}
	}
	// Empty matrix must not panic.
	if got := SSV(NewMatrix(0, 0)); len(got) != 0 {
		t.Fatalf("empty SSV = %v", got)
	}
}

// TestCentroidDecompositionReconstructs: the full decomposition reproduces
// the matrix (X = Σ lᵢ rᵢᵀ) on random inputs.
func TestCentroidDecompositionReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		x := randomMatrix(seed, 6, 4)
		comps := CentroidDecomposition(x, 0)
		recon := ReconstructCentroid(comps, x.Rows, x.Cols)
		return recon.Sub(x).FrobeniusNorm() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidComponentsOrthonormalR(t *testing.T) {
	x := randomMatrix(3, 8, 4)
	comps := CentroidDecomposition(x, 0)
	for i, c := range comps {
		if math.Abs(Norm2(c.R)-1) > 1e-9 {
			t.Fatalf("R[%d] not unit: %v", i, Norm2(c.R))
		}
	}
	// Centroid values are non-increasing in well-behaved cases is not
	// guaranteed by the greedy SSV, but they must be non-negative.
	for i, c := range comps {
		if c.Value < 0 {
			t.Fatalf("negative centroid value %v at %d", c.Value, i)
		}
	}
}

func TestCentroidTruncationCapturesRankOne(t *testing.T) {
	// A rank-one matrix is fully captured by one component.
	u := []float64{1, 2, 3, 4}
	v := []float64{2, -1, 0.5}
	x := Outer(u, v)
	comps := CentroidDecomposition(x, 1)
	recon := ReconstructCentroid(comps, 4, 3)
	if recon.Sub(x).FrobeniusNorm() > 1e-9 {
		t.Fatal("rank-one matrix not captured by one centroid component")
	}
}

func TestJacobiSVDKnown(t *testing.T) {
	// Diagonal matrix: singular values are the absolute diagonal entries.
	x := FromRows([][]float64{{3, 0}, {0, -2}, {0, 0}})
	_, sigma, _ := JacobiSVD(x)
	if math.Abs(sigma[0]-3) > 1e-9 || math.Abs(sigma[1]-2) > 1e-9 {
		t.Fatalf("singular values = %v, want [3 2]", sigma)
	}
}

// TestJacobiSVDProperties: U has orthonormal columns, V is orthogonal,
// singular values descend, and U·diag(σ)·Vᵀ reconstructs X.
func TestJacobiSVDProperties(t *testing.T) {
	f := func(seed int64) bool {
		x := randomMatrix(seed, 7, 4)
		u, sigma, v := JacobiSVD(x)
		// Descending σ.
		for i := 1; i < len(sigma); i++ {
			if sigma[i] > sigma[i-1]+1e-9 {
				return false
			}
		}
		// U columns orthonormal.
		for a := 0; a < u.Cols; a++ {
			for b := a; b < u.Cols; b++ {
				dot := Dot(u.Col(a), u.Col(b))
				want := 0.0
				if a == b {
					want = 1
				}
				if sigma[a] > 1e-9 && sigma[b] > 1e-9 && math.Abs(dot-want) > 1e-6 {
					return false
				}
			}
		}
		// Reconstruction.
		recon := NewMatrix(x.Rows, x.Cols)
		for r := 0; r < len(sigma); r++ {
			for i := 0; i < x.Rows; i++ {
				for j := 0; j < x.Cols; j++ {
					recon.Set(i, j, recon.At(i, j)+sigma[r]*u.At(i, r)*v.At(j, r))
				}
			}
		}
		return recon.Sub(x).FrobeniusNorm() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiSVDWide(t *testing.T) {
	// m < n path: decompose the transpose internally.
	x := FromRows([][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}})
	u, sigma, v := JacobiSVD(x)
	recon := NewMatrix(2, 4)
	for r := 0; r < len(sigma); r++ {
		for i := 0; i < 2; i++ {
			for j := 0; j < 4; j++ {
				recon.Set(i, j, recon.At(i, j)+sigma[r]*u.At(i, r)*v.At(j, r))
			}
		}
	}
	if recon.Sub(x).FrobeniusNorm() > 1e-6 {
		t.Fatal("wide-matrix SVD does not reconstruct")
	}
}

// TestRLSRecoversLinearModel: RLS converges to the true coefficients of a
// noiseless linear model.
func TestRLSRecoversLinearModel(t *testing.T) {
	theta := []float64{2, -1, 0.5}
	rls := NewRLS(3, 1, 1e4)
	state := uint64(99)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/100 - 10
	}
	for i := 0; i < 300; i++ {
		x := []float64{1, next(), next()}
		y := Dot(theta, x)
		rls.Update(x, y)
	}
	for i, want := range theta {
		if math.Abs(rls.Theta[i]-want) > 1e-6 {
			t.Fatalf("θ[%d] = %v, want %v", i, rls.Theta[i], want)
		}
	}
	x := []float64{1, 2, 3}
	if math.Abs(rls.Predict(x)-Dot(theta, x)) > 1e-6 {
		t.Fatal("prediction wrong after convergence")
	}
}

func TestRLSForgetting(t *testing.T) {
	// With λ < 1 the model tracks a coefficient change; with λ = 1 it is
	// anchored by all history. After a switch, the forgetting model must be
	// closer to the new regime.
	gen := func(lambda float64) float64 {
		rls := NewRLS(2, lambda, 1e4)
		state := uint64(7)
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%2000)/100 - 10
		}
		for i := 0; i < 400; i++ {
			x := []float64{1, next()}
			coef := 1.0
			if i >= 200 {
				coef = 3.0
			}
			rls.Update(x, coef*x[1])
		}
		return rls.Theta[1]
	}
	if math.Abs(gen(0.95)-3) > math.Abs(gen(1)-3) {
		t.Fatal("forgetting factor must track the regime change better than λ = 1")
	}
}

func TestRLSDimensionMismatch(t *testing.T) {
	rls := NewRLS(2, 1, 1e4)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	rls.Update([]float64{1}, 2)
}
