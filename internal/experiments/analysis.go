package experiments

import (
	"math"

	"tkcm/internal/core"
	"tkcm/internal/stats"
)

// SineAnalysis reproduces the analysis of Sec. 5 (Figs. 4–7, Examples 5–8)
// on the paper's synthetic sine waves:
//
//	s(t)  = sind(t)
//	r1(t) = 1.5·sind(t) + 1     (linearly correlated with s)
//	r2(t) = sind(t − 90)        (phase shifted; Pearson ≈ 0)
//
// It reports the two Pearson correlations, the number of near-zero-distance
// patterns for l = 1 vs l = 60 against each reference (the monotonicity of
// Lemma 5.1 and the disambiguation effect of Figs. 6–7), and the spread of
// s-values among the near-zero anchors (near zero only for the long pattern
// on the shifted reference).
type SineAnalysis struct {
	PearsonLinear  float64 // ρ(s, r1): expected ≈ +1
	PearsonShifted float64 // ρ(s, r2): expected ≈ 0

	// NearZero[ref][l] = number of candidate anchors whose pattern is within
	// tau of the query pattern, for ref ∈ {"r1","r2"} and l ∈ {1, 60}.
	NearZeroR1L1  int
	NearZeroR1L60 int
	NearZeroR2L1  int
	NearZeroR2L60 int

	// SpreadR2L1 / SpreadR2L60: max spread of s at the near-zero anchors of
	// the shifted reference — large for l = 1 (ambiguous up/down slope),
	// ≈ 0 for l = 60.
	SpreadR2L1  float64
	SpreadR2L60 float64
}

// sind is sine of an angle in degrees, as used by the paper's examples.
func sind(deg float64) float64 { return math.Sin(deg * math.Pi / 180) }

// AnalyzeSines runs the Sec. 5 analysis over one-minute ticks t = 0..840
// (the x-range of Figs. 4–7) with query time tn = 840.
func AnalyzeSines() SineAnalysis {
	const n = 841 // t = 0..840 minutes
	s := make([]float64, n)
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for t := 0; t < n; t++ {
		ft := float64(t)
		s[t] = sind(ft)
		r1[t] = 1.5*sind(ft) + 1
		r2[t] = sind(ft - 90)
	}
	a := SineAnalysis{
		PearsonLinear:  stats.Pearson(s, r1),
		PearsonShifted: stats.Pearson(s, r2),
	}
	const tau = 1e-6
	count := func(ref []float64, l int) (int, float64) {
		profile := profileAgainst(ref, l)
		near := 0
		lo, hi := math.Inf(1), math.Inf(-1)
		for j, d := range profile {
			if d <= tau {
				near++
				v := s[j+l-1] // s at the anchor tick
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		spread := 0.0
		if near > 0 {
			spread = hi - lo
		}
		return near, spread
	}
	a.NearZeroR1L1, _ = count(r1, 1)
	a.NearZeroR1L60, _ = count(r1, 60)
	a.NearZeroR2L1, a.SpreadR2L1 = count(r2, 1)
	a.NearZeroR2L60, a.SpreadR2L60 = count(r2, 60)
	return a
}

// profileAgainst computes the dissimilarity profile of a single reference
// series against the query pattern anchored at its last tick, using the
// core L2 dissimilarity via the public Pattern API.
func profileAgainst(ref []float64, l int) []float64 {
	n := len(ref)
	nCand := n - 2*l + 1
	if nCand < 0 {
		nCand = 0
	}
	query := core.ExtractPattern([][]float64{ref}, n-1, l)
	out := make([]float64, nCand)
	for j := 0; j < nCand; j++ {
		p := core.ExtractPattern([][]float64{ref}, j+l-1, l)
		out[j] = core.Dissimilarity(p, query, core.L2)
	}
	return out
}

// AblationRow compares TKCM design variants on one dataset (the DESIGN.md §4
// ablations).
type AblationRow struct {
	Dataset string
	Variant string
	RMSE    float64
	// SumDissimilarity is the mean selected-anchor dissimilarity sum, the
	// objective the DP provably minimizes (greedy must be ≥ DP).
	SumDissimilarity float64
}

// AblationSelection compares DP vs greedy vs overlapping anchor selection.
func AblationSelection(scale Scale, ds string) ([]AblationRow, error) {
	sp := scale.Spec(ds)
	var rows []AblationRow
	for _, sel := range []core.Selection{core.SelectDP, core.SelectGreedy, core.SelectOverlapping} {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, err
		}
		cfg := sp.Cfg
		cfg.Selection = sel
		rec, details, err := RunTKCMDetailed(sc, cfg)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, r := range details {
			sum += r.SumDissimilarity
		}
		rows = append(rows, AblationRow{
			Dataset:          ds,
			Variant:          sel.String(),
			RMSE:             rec.RMSE,
			SumDissimilarity: sum / float64(len(details)),
		})
	}
	return rows, nil
}

// AblationNorms compares the L2 default against the Sec. 8 future-work
// alternatives L1 and L∞.
func AblationNorms(scale Scale, ds string) ([]AblationRow, error) {
	sp := scale.Spec(ds)
	var rows []AblationRow
	for _, norm := range []core.Norm{core.L2, core.L1, core.LInf} {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, err
		}
		cfg := sp.Cfg
		cfg.Norm = norm
		rec, err := RunTKCM(sc, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Dataset: ds, Variant: norm.String(), RMSE: rec.RMSE})
	}
	return rows, nil
}

// AblationWeighting compares the plain anchor mean (Def. 4) against
// similarity-weighted averaging.
func AblationWeighting(scale Scale, ds string) ([]AblationRow, error) {
	sp := scale.Spec(ds)
	var rows []AblationRow
	for _, weighted := range []bool{false, true} {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, err
		}
		cfg := sp.Cfg
		cfg.WeightedMean = weighted
		rec, err := RunTKCM(sc, cfg)
		if err != nil {
			return nil, err
		}
		name := "mean"
		if weighted {
			name = "weighted"
		}
		rows = append(rows, AblationRow{Dataset: ds, Variant: name, RMSE: rec.RMSE})
	}
	return rows, nil
}
