package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"tkcm/internal/core"
)

// ThroughputRow reports one streaming-engine throughput measurement: the
// profiler and worker count it ran with, the work done, and the rates.
type ThroughputRow struct {
	Profiler string `json:"profiler"`
	Workers  int    `json:"workers"`
	// MissingStreams is the actual number of target streams dropped per
	// missing tick (the request is clamped to leave d references present).
	MissingStreams int           `json:"missing_streams"`
	Ticks          int           `json:"ticks"`
	Imputations    int           `json:"imputations"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	// TicksPerSec is the end-to-end ingest rate (every tick advances the
	// window; some ticks also impute).
	TicksPerSec float64 `json:"ticks_per_sec"`
	// NsPerTick is the mean wall-clock per tick over the measured run.
	NsPerTick float64 `json:"ns_per_tick"`
	// AllocsPerTick is the mean heap-allocation count per tick.
	AllocsPerTick float64 `json:"allocs_per_tick"`
	// PerImputation is the mean wall-clock per TKCM imputation, measured
	// over the imputing ticks only (impute-free window advances are not
	// charged to it).
	PerImputation time.Duration `json:"per_imputation_ns"`
}

// EngineThroughput streams the SBR-1d dataset through the continuous
// engine with the given extraction strategy and worker count, dropping a
// fixed fraction of target measurements once the window is warm, and
// measures the ingest rate. missingStreams targets are dropped together on
// missing ticks so worker pools have intra-tick parallelism to exploit.
func EngineThroughput(scale Scale, kind core.ProfilerKind, workers, missingStreams int) (ThroughputRow, error) {
	sp := scale.Spec(DSSBR1d)
	frame := sp.Generate()
	names := frame.Names()
	cfg := sp.Cfg
	cfg.Profiler = kind
	cfg.Workers = workers
	if missingStreams < 1 {
		missingStreams = 1
	}
	if missingStreams > len(names)-cfg.D {
		missingStreams = len(names) - cfg.D
	}
	refs := make(map[string]core.ReferenceSet, missingStreams)
	for i := 0; i < missingStreams; i++ {
		var cands []string
		for j := missingStreams; j < len(names); j++ {
			cands = append(cands, names[j])
		}
		refs[names[i]] = core.ReferenceSet{Stream: names[i], Candidates: cands}
	}
	eng, err := core.NewEngine(cfg, names, refs)
	if err != nil {
		return ThroughputRow{}, err
	}
	defer eng.Close()
	n := frame.Len()
	warm := cfg.WindowLength
	if warm >= n {
		return ThroughputRow{}, fmt.Errorf("experiments: dataset too short (%d ticks) for window %d", n, warm)
	}
	row := make([]float64, len(names))
	fill := func(t int) {
		for j, s := range frame.Series {
			row[j] = s.Values[t]
		}
	}
	for t := 0; t < warm; t++ {
		fill(t)
		if _, _, err := eng.Tick(row); err != nil {
			return ThroughputRow{}, err
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var imputing time.Duration
	for t := warm; t < n; t++ {
		fill(t)
		drop := t%5 == 0 // drop the targets on every 5th tick
		if drop {
			for i := 0; i < missingStreams; i++ {
				row[i] = math.NaN()
			}
		}
		tickStart := time.Now()
		if _, _, err := eng.Tick(row); err != nil {
			return ThroughputRow{}, err
		}
		if drop {
			imputing += time.Since(tickStart)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	measured := n - warm
	out := ThroughputRow{
		Profiler:       eng.Profiler().Name(),
		Workers:        cfg.Workers,
		MissingStreams: missingStreams,
		Ticks:          measured,
		Imputations:    eng.Stats.Imputations,
		Elapsed:        elapsed,
		TicksPerSec:    float64(measured) / elapsed.Seconds(),
		NsPerTick:      float64(elapsed.Nanoseconds()) / float64(measured),
		AllocsPerTick:  float64(ms1.Mallocs-ms0.Mallocs) / float64(measured),
	}
	if eng.Stats.Imputations > 0 {
		out.PerImputation = imputing / time.Duration(eng.Stats.Imputations)
	}
	return out, nil
}
