package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"

	"tkcm/internal/core"
	"tkcm/internal/dataset"
	"tkcm/internal/timeseries"
)

// failWriter fails after n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTableWriteToError(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	if _, err := tb.WriteTo(&failWriter{n: 3}); err == nil {
		t.Fatal("expected write error")
	}
	// A row shorter than the header renders without panicking.
	tb.AddRow("only")
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only") {
		t.Fatalf("short row dropped:\n%s", sb.String())
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Fatalf("empty input rendered %q", s)
	}
	// Constant input: no range, lowest glyph everywhere, no division by zero.
	if s := Sparkline([]float64{2, 2, 2, 2}, 0); len([]rune(s)) != 4 {
		t.Fatalf("constant input rendered %q", s)
	}
	// Width larger than the data clamps to the data length.
	if s := Sparkline([]float64{1, 2}, 100); len([]rune(s)) != 2 {
		t.Fatalf("oversized width rendered %q", s)
	}
}

func TestRenderSummaryEmptyResults(t *testing.T) {
	empty := &GridResult{Schema: GridSchema, Grid: "g"}
	if _, err := RenderSummaryJSON(empty); err == nil {
		t.Fatal("summary.json rendered with zero cells")
	}
	if _, err := RenderSummaryMD(empty); err == nil {
		t.Fatal("summary.md rendered with zero cells")
	}
}

func TestRenderSummaryMismatchedAlgorithms(t *testing.T) {
	res := &GridResult{Schema: GridSchema, Grid: "g", Cells: []CellResult{
		{Dataset: DSSBR, Scenario: "block", PatternLength: 24, Algorithm: AlgTKCM, RMSE: 1},
		{Dataset: DSSBR, Scenario: "block", PatternLength: 24, Algorithm: AlgCD, RMSE: 1},
		{Dataset: DSSBR, Scenario: "bursty", PatternLength: 24, Algorithm: AlgTKCM, RMSE: 1},
	}}
	_, err := RenderSummaryMD(res)
	if err == nil || !strings.Contains(err.Error(), "mismatched algorithm sets") {
		t.Fatalf("err = %v, want mismatched algorithm sets", err)
	}
	// A duplicate cell is rejected too.
	dup := &GridResult{Schema: GridSchema, Grid: "g", Cells: []CellResult{
		{Dataset: DSSBR, Scenario: "block", PatternLength: 24, Algorithm: AlgTKCM, RMSE: 1},
		{Dataset: DSSBR, Scenario: "block", PatternLength: 24, Algorithm: AlgTKCM, RMSE: 2},
	}}
	if _, err := RenderSummaryMD(dup); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("err = %v, want duplicate cell", err)
	}
}

func TestRenderSummaryNaNMetrics(t *testing.T) {
	nan := JSONFloat(math.NaN())
	res := &GridResult{Schema: GridSchema, Grid: "g", Cells: []CellResult{
		{Dataset: DSSBR, Scenario: "adversarial", PatternLength: 24, Algorithm: AlgTKCM,
			RMSE: nan, SMAPE: nan, MAE: nan},
		{Dataset: DSSBR, Scenario: "adversarial", PatternLength: 24, Algorithm: AlgCD,
			RMSE: 1.25, SMAPE: nan, MAE: nan},
	}}
	md, err := RenderSummaryMD(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "| — |") {
		t.Fatalf("all-NaN cell not rendered as —:\n%s", md)
	}
	if !strings.Contains(string(md), "1.25 (—)") {
		t.Fatalf("partial-NaN cell mis-rendered:\n%s", md)
	}
	// And the JSON form encodes the NaNs as null rather than erroring.
	js, err := RenderSummaryJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"rmse": null`) {
		t.Fatalf("NaN metric not null in JSON:\n%s", js)
	}
}

func TestStripSummaryMeta(t *testing.T) {
	md := []byte(SummaryMetaBegin + "\nstamp\n" + SummaryMetaEnd + "\nbody\n")
	if got := string(StripSummaryMeta(md)); got != "\nbody\n" {
		t.Fatalf("stripped = %q", got)
	}
	// No markers: unchanged.
	if got := string(StripSummaryMeta([]byte("plain"))); got != "plain" {
		t.Fatalf("marker-free input mangled: %q", got)
	}
}

// brokenScale returns a Scale whose single spec fails scenario construction
// (block out of range), to drive the analysis error paths.
func brokenScale(blockStart int) Scale {
	return Scale{Name: "broken", specs: map[string]Spec{
		DSSBR: {
			Dataset: DSSBR,
			Generate: func() *timeseries.Frame {
				return dataset.SBR(dataset.SBRConfig{Stations: 4, Ticks: 600, Seed: 1, NoiseSD: 0.2})
			},
			Target: "s0", Targets: []string{"s0"},
			Cfg: core.Config{K: 3, PatternLength: 24, D: 2, WindowLength: 400,
				Norm: core.L2, Selection: core.SelectDP},
			BlockStart: blockStart, BlockLen: 100, Width: 3, TicksPerDay: 288,
		},
	}}
}

// TestAblationErrorPaths: every ablation surfaces scenario-construction and
// TKCM-run failures instead of panicking or returning partial rows.
func TestAblationErrorPaths(t *testing.T) {
	bad := brokenScale(10_000) // block starts beyond the data
	if _, err := AblationSelection(bad, DSSBR); err == nil {
		t.Fatal("AblationSelection swallowed the scenario error")
	}
	if _, err := AblationNorms(bad, DSSBR); err == nil {
		t.Fatal("AblationNorms swallowed the scenario error")
	}
	if _, err := AblationWeighting(bad, DSSBR); err == nil {
		t.Fatal("AblationWeighting swallowed the scenario error")
	}

	// A config the engine rejects (d exceeding the available references)
	// propagates from RunTKCM.
	short := brokenScale(450)
	sp := short.specs[DSSBR]
	sp.Cfg.D = 64
	short.specs[DSSBR] = sp
	if _, err := AblationNorms(short, DSSBR); err == nil {
		t.Fatal("AblationNorms swallowed the reference-count error")
	}

	// Unknown datasets panic loudly (programming error, not input error).
	defer func() {
		if recover() == nil {
			t.Fatal("Scale.Spec on an unknown dataset did not panic")
		}
	}()
	_, _ = AblationNorms(tinyScale(), "Atlantis")
}

// TestGridCellErrors: RunGrid surfaces per-cell failures with the cell
// identity attached.
func TestGridCellErrors(t *testing.T) {
	spec := tinyGridSpec("block")
	spec.PatternLengths = []int{1 << 20} // pattern longer than any window
	_, err := RunGrid(tinyScale(), spec, GridOptions{})
	if err == nil || !strings.Contains(err.Error(), "cell SBR/block/") {
		t.Fatalf("err = %v, want cell-tagged failure", err)
	}
}
