package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/core"
)

// tinyGridSpec is a grid sized for unit tests: one dataset, a handful of
// scenarios, all algorithms.
func tinyGridSpec(scenarios ...string) *GridSpec {
	if len(scenarios) == 0 {
		scenarios = []string{"block", "bursty", "correlated", "regime-shift", "adversarial"}
	}
	spec := &GridSpec{
		Schema:     GridSchema,
		Name:       "tiny",
		Seed:       11,
		Datasets:   []string{DSSBR},
		Algorithms: []string{AlgTKCM, AlgSPIRIT, AlgMUSCLES, AlgCD, AlgInterpolate, AlgKNNI},
	}
	for _, sc := range scenarios {
		spec.Scenarios = append(spec.Scenarios, GridScenario{Kind: sc})
	}
	return spec
}

func TestGridSpecValidate(t *testing.T) {
	bad := []func(*GridSpec){
		func(s *GridSpec) { s.Name = "" },
		func(s *GridSpec) { s.Datasets = nil },
		func(s *GridSpec) { s.Datasets = []string{"Atlantis"} },
		func(s *GridSpec) { s.Algorithms = nil },
		func(s *GridSpec) { s.Algorithms = []string{"ORACLE"} },
		func(s *GridSpec) { s.Scenarios = nil },
		func(s *GridSpec) { s.Scenarios = []GridScenario{{Kind: "martian"}} },
		func(s *GridSpec) { s.Scenarios = append(s.Scenarios, s.Scenarios[0]) },
		func(s *GridSpec) { s.PatternLengths = []int{-3} },
		func(s *GridSpec) { s.Schema = "tkcm-grid-v999" },
		func(s *GridSpec) { s.Quick.Datasets = []string{"Atlantis"} },
		func(s *GridSpec) { s.SLO.Sweeps = []SLOSweep{{Name: "x", Shards: 1, Tenants: 1, Width: 1, Duration: "1s"}} },
	}
	for i, mutate := range bad {
		spec := tinyGridSpec()
		mutate(spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	spec := tinyGridSpec()
	spec.Seed = 0
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 || spec.TargetsPerDataset != 1 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
}

func TestParseGridSpecRejectsGarbage(t *testing.T) {
	if _, err := ParseGridSpec([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadGridSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected load error")
	}
}

// TestGridDeterminism: two full runs of the same spec produce byte-identical
// summary.json and summary.md — the acceptance property behind the committed
// paper_runs/ artifacts.
func TestGridDeterminism(t *testing.T) {
	spec := tinyGridSpec("block", "bursty", "adversarial")
	scale := tinyScale()
	run := func() (*GridResult, []byte, []byte) {
		res, err := RunGrid(scale, spec, GridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		js, err := RenderSummaryJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		md, err := RenderSummaryMD(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, js, md
	}
	res1, js1, md1 := run()
	_, js2, md2 := run()
	if !bytes.Equal(js1, js2) {
		t.Fatal("two identical grid runs rendered different summary.json")
	}
	if !bytes.Equal(md1, md2) {
		t.Fatal("two identical grid runs rendered different summary.md")
	}
	wantCells := 1 * 3 * 6 // datasets × scenarios × algorithms
	if len(res1.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res1.Cells), wantCells)
	}
	// Cells must be finite for every non-adversarial scenario and carry a
	// plausible spread: TKCM should beat naive interpolation on the paper's
	// seasonal SBR block scenario.
	byKey := make(map[string]CellResult)
	for _, c := range res1.Cells {
		byKey[c.Key()] = c
		if c.Scenario != "adversarial" && math.IsNaN(float64(c.RMSE)) {
			t.Errorf("cell %s has NaN RMSE", c.Key())
		}
	}
	tkcm := byKey["SBR/block/l=24/TKCM"]
	interp := byKey["SBR/block/l=24/Interp"]
	if float64(tkcm.RMSE) >= float64(interp.RMSE) {
		t.Errorf("TKCM (%.4g) does not beat interpolation (%.4g) on SBR/block", tkcm.RMSE, interp.RMSE)
	}
}

// TestGridQuickView: quick mode restricts datasets and pattern lengths
// deterministically.
func TestGridQuickView(t *testing.T) {
	spec := tinyGridSpec("block")
	spec.Datasets = []string{DSSBR, DSSBR1d, DSChlorine}
	spec.PatternLengths = []int{24, 36}
	spec.TargetsPerDataset = 2
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	q := spec.quickView()
	if len(q.Datasets) != 2 || q.Datasets[0] != DSSBR || q.Datasets[1] != DSSBR1d {
		t.Fatalf("quick datasets = %v", q.Datasets)
	}
	if len(q.PatternLengths) != 1 || q.PatternLengths[0] != 24 {
		t.Fatalf("quick pattern lengths = %v", q.PatternLengths)
	}
	if q.TargetsPerDataset != 1 {
		t.Fatalf("quick targets per dataset = %d", q.TargetsPerDataset)
	}
	spec.Quick.Datasets = []string{DSChlorine}
	spec.Quick.PatternLengths = []int{36}
	q = spec.quickView()
	if len(q.Datasets) != 1 || q.Datasets[0] != DSChlorine || q.PatternLengths[0] != 36 {
		t.Fatalf("declared quick view ignored: %v %v", q.Datasets, q.PatternLengths)
	}
}

// TestAccuracyGatePassesAndTrips is the synthetic-regression acceptance
// test: an unperturbed re-run passes the gate; a degraded engine (pattern
// length forced to 1, k to 1 — TKCM reduced to nearest-single-tick lookup)
// trips it.
func TestAccuracyGatePassesAndTrips(t *testing.T) {
	spec := tinyGridSpec("block", "bursty")
	scale := tinyScale()
	res, err := RunGrid(scale, spec, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := NewBaseline(res)

	again, err := RunGrid(scale, spec, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if failures := baseline.Gate(again, 0.05); len(failures) != 0 {
		t.Fatalf("clean re-run tripped the gate: %v", failures)
	}

	degraded, err := RunGrid(scale, spec, GridOptions{Perturb: func(cfg *core.Config) {
		cfg.PatternLength = 1
		cfg.K = 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	failures := baseline.Gate(degraded, 0.05)
	if len(failures) == 0 {
		t.Fatal("degraded engine passed the accuracy gate")
	}
	for _, f := range failures {
		if !strings.Contains(f, "/TKCM") {
			t.Fatalf("gate failure names a non-TKCM cell: %s", f)
		}
	}
}

// TestAccuracyGateEdgeCases covers the gate's non-regression failure modes.
func TestAccuracyGateEdgeCases(t *testing.T) {
	mk := func(key string, rmse, smape float64) *GridResult {
		parts := strings.Split(key, "/")
		return &GridResult{Schema: GridSchema, Grid: "g", Cells: []CellResult{{
			Dataset: parts[0], Scenario: parts[1], PatternLength: 24, Algorithm: parts[3],
			RMSE: JSONFloat(rmse), SMAPE: JSONFloat(smape),
		}}}
	}
	base := NewBaseline(mk("SBR/block/l=24/TKCM", 1.0, 10))

	// A pinned TKCM cell missing from the run fails.
	if failures := base.Gate(&GridResult{}, 0.05); len(failures) != 1 {
		t.Fatalf("missing cell: %v", failures)
	}
	// NaN where the pin is finite fails.
	if failures := base.Gate(mk("SBR/block/l=24/TKCM", math.NaN(), 10), 0.05); len(failures) != 1 {
		t.Fatalf("NaN metric: %v", failures)
	}
	// A NaN pin gates nothing.
	nanBase := NewBaseline(mk("SBR/block/l=24/TKCM", math.NaN(), math.NaN()))
	if failures := nanBase.Gate(mk("SBR/block/l=24/TKCM", 99, 199), 0.05); len(failures) != 0 {
		t.Fatalf("NaN pin gated: %v", failures)
	}
	// SMAPE regressions gate independently of RMSE.
	if failures := base.Gate(mk("SBR/block/l=24/TKCM", 1.0, 10.6), 0.05); len(failures) != 1 {
		t.Fatalf("SMAPE regression: %v", failures)
	}
	// Within tolerance passes.
	if failures := base.Gate(mk("SBR/block/l=24/TKCM", 1.04, 10.4), 0.05); len(failures) != 0 {
		t.Fatalf("within-tolerance run failed: %v", failures)
	}
	// Non-TKCM baseline cells never gate.
	spiritBase := NewBaseline(mk("SBR/block/l=24/SPIRIT", 1.0, 10))
	if failures := spiritBase.Gate(&GridResult{}, 0.05); len(failures) != 0 {
		t.Fatalf("SPIRIT cell gated: %v", failures)
	}
}

// TestBaselineRoundTrip: Save/Load preserve cells, NaN included, and Load
// rejects foreign schemas.
func TestBaselineRoundTrip(t *testing.T) {
	res := &GridResult{Schema: GridSchema, Grid: "g", Seed: 3, Scale: "tiny", Cells: []CellResult{
		{Dataset: DSSBR, Scenario: "block", PatternLength: 24, Algorithm: AlgTKCM, RMSE: 0.5, SMAPE: 7},
		{Dataset: DSSBR, Scenario: "adversarial", PatternLength: 24, Algorithm: AlgTKCM,
			RMSE: JSONFloat(math.NaN()), SMAPE: JSONFloat(math.NaN())},
	}}
	path := filepath.Join(t.TempDir(), "ACCURACY.json")
	if err := NewBaseline(res).Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cells) != 2 || b.Grid != "g" || b.Seed != 3 {
		t.Fatalf("round trip lost data: %+v", b)
	}
	adv := b.Cells["SBR/adversarial/l=24/TKCM"]
	if !math.IsNaN(float64(adv.RMSE)) {
		t.Fatalf("NaN cell decoded as %v", adv.RMSE)
	}
	// Foreign schema rejected.
	if err := os.WriteFile(path, []byte(`{"schema":"bogus-v9","cells":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestJSONFloat: NaN survives a marshal/unmarshal round trip as null.
func TestJSONFloat(t *testing.T) {
	in := []JSONFloat{1.5, JSONFloat(math.NaN()), JSONFloat(math.Inf(1))}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "[1.5,null,null]" {
		t.Fatalf("marshal = %s", raw)
	}
	var out []JSONFloat
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if float64(out[0]) != 1.5 || !math.IsNaN(float64(out[1])) || !math.IsNaN(float64(out[2])) {
		t.Fatalf("unmarshal = %v", out)
	}
	if err := json.Unmarshal([]byte(`["nope"]`), &out); err == nil {
		t.Fatal("string accepted as JSONFloat")
	}
}

// TestGridGolden is the golden-file acceptance test: a tiny 2-cell grid must
// render byte-stable summary artifacts (summary.md compared modulo its
// stamped metadata block). Regenerate with TKCM_UPDATE_GOLDEN=1 after an
// intentional rendering or engine change.
func TestGridGolden(t *testing.T) {
	spec := tinyGridSpec("block")
	spec.Algorithms = []string{AlgTKCM, AlgInterpolate} // 2 cells
	res, err := RunGrid(tinyScale(), spec, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	js, err := RenderSummaryJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	md, err := RenderSummaryMD(res)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary.json.golden", js)
	checkGolden(t, "summary.md.golden", StripSummaryMeta(md))
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("TKCM_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with TKCM_UPDATE_GOLDEN=1): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file; if intentional, regenerate with TKCM_UPDATE_GOLDEN=1\ngot:\n%s", name, got)
	}
}
