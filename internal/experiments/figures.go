package experiments

import (
	"fmt"
	"math"
	"time"

	"tkcm/internal/cd"
	"tkcm/internal/core"
	"tkcm/internal/muscles"
	"tkcm/internal/spirit"
	"tkcm/internal/stats"
)

// ---------------------------------------------------------------------------
// Fig. 10 — calibration of d (reference series) and k (anchor points)
// ---------------------------------------------------------------------------

// CalibrationRow is one point of Fig. 10: the RMSE of TKCM on a dataset with
// one parameter varied and the others at their defaults.
type CalibrationRow struct {
	Dataset string
	Param   string // "d" or "k"
	Value   int
	RMSE    float64
}

// Fig10Calibration reproduces Fig. 10: RMSE as a function of d (left column)
// and k (right column) on SBR-1d, Flights, and Chlorine.
func Fig10Calibration(scale Scale) ([]CalibrationRow, error) {
	dValues := []int{2, 3, 4, 5, 6, 7}
	kValues := []int{2, 3, 5, 7, 10}
	var rows []CalibrationRow
	for _, ds := range []string{DSSBR1d, DSFlights, DSChlorine} {
		sp := scale.Spec(ds)
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", ds, err)
		}
		for _, d := range dValues {
			if d > len(sc.Refs) {
				continue
			}
			cfg := sp.Cfg
			cfg.D = d
			rec, err := RunTKCM(sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s d=%d: %w", ds, d, err)
			}
			rows = append(rows, CalibrationRow{Dataset: ds, Param: "d", Value: d, RMSE: rec.RMSE})
		}
		for _, k := range kValues {
			cfg := sp.Cfg
			cfg.K = k
			rec, err := RunTKCM(sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s k=%d: %w", ds, k, err)
			}
			rows = append(rows, CalibrationRow{Dataset: ds, Param: "k", Value: k, RMSE: rec.RMSE})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 11 — pattern length l
// ---------------------------------------------------------------------------

// PatternLengthRow is one point of Fig. 11.
type PatternLengthRow struct {
	Dataset string
	L       int
	RMSE    float64
}

// Fig11LValues are the pattern lengths swept in Fig. 11.
var Fig11LValues = []int{1, 36, 72, 108, 144}

// Fig11PatternLength reproduces Fig. 11: RMSE as a function of the pattern
// length l on all four datasets. The paper's expected shape: flat on SBR
// (linearly correlated), sharply improving with l on the three shifted
// datasets.
func Fig11PatternLength(scale Scale) ([]PatternLengthRow, error) {
	var rows []PatternLengthRow
	for _, ds := range AllDatasets {
		sp := scale.Spec(ds)
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", ds, err)
		}
		for _, l := range Fig11LValues {
			cfg := sp.Cfg
			cfg.PatternLength = l
			rec, err := RunTKCM(sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s l=%d: %w", ds, l, err)
			}
			rows = append(rows, PatternLengthRow{Dataset: ds, L: l, RMSE: rec.RMSE})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 12 — recovered series with l = 1 vs l = 72
// ---------------------------------------------------------------------------

// RecoverySeries holds Fig. 12's qualitative comparison for one dataset: the
// ground truth of the block and TKCM's recovery with a short and a long
// pattern, plus RMSE and an oscillation measure (std of the first
// difference) that quantifies the l = 1 jitter the figure shows.
type RecoverySeries struct {
	Dataset      string
	Truth        []float64
	ShortPattern []float64 // l = 1
	LongPattern  []float64 // l = 72
	RMSEShort    float64
	RMSELong     float64
	OscShort     float64
	OscLong      float64
	OscTruth     float64
}

// Fig12Recovery reproduces Fig. 12 on every dataset.
func Fig12Recovery(scale Scale) ([]RecoverySeries, error) {
	var out []RecoverySeries
	for _, ds := range AllDatasets {
		sp := scale.Spec(ds)
		scShort, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", ds, err)
		}
		cfgShort := sp.Cfg
		cfgShort.PatternLength = 1
		recShort, err := RunTKCM(scShort, cfgShort)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s l=1: %w", ds, err)
		}
		scLong, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", ds, err)
		}
		recLong, err := RunTKCM(scLong, sp.Cfg)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s l=%d: %w", ds, sp.Cfg.PatternLength, err)
		}
		out = append(out, RecoverySeries{
			Dataset:      ds,
			Truth:        scShort.Block.Truth,
			ShortPattern: recShort.Imputed,
			LongPattern:  recLong.Imputed,
			RMSEShort:    recShort.RMSE,
			RMSELong:     recLong.RMSE,
			OscShort:     oscillation(recShort.Imputed),
			OscLong:      oscillation(recLong.Imputed),
			OscTruth:     oscillation(scShort.Block.Truth),
		})
	}
	return out, nil
}

// oscillation is the standard deviation of the first difference — high for
// the jittery l = 1 recoveries of Fig. 12.
func oscillation(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	diffs := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		diffs[i-1] = xs[i] - xs[i-1]
	}
	return stats.Std(diffs)
}

// ---------------------------------------------------------------------------
// Fig. 13 — scatter (non-linear correlation) and average ε vs l
// ---------------------------------------------------------------------------

// EpsilonRow is one point of Fig. 13b: the average ε (Def. 5 anchor-value
// spread) over all imputations of the block, as a function of l.
type EpsilonRow struct {
	L          int
	AvgEpsilon float64
	RMSE       float64
}

// Fig13Result bundles Fig. 13's two panels for the Chlorine dataset.
type Fig13Result struct {
	// PearsonTargetRef is ρ(s, r1), the weak linear correlation shown by the
	// scatterplot in Fig. 13a (paper: 0.5).
	PearsonTargetRef float64
	Rows             []EpsilonRow
}

// Fig13Epsilon reproduces Fig. 13 on the Chlorine dataset: ε shrinks as l
// grows (until the pattern outgrows the window's diversity).
func Fig13Epsilon(scale Scale) (*Fig13Result, error) {
	sp := scale.Spec(DSChlorine)
	probe, err := NewSpecScenario(sp, "")
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	target := probe.Frame.ByName(probe.Target)
	ref := probe.Frame.ByName(probe.Refs[0])
	res.PearsonTargetRef = stats.Pearson(target.Values[:probe.Block.Start], ref.Values[:probe.Block.Start])
	for _, l := range Fig11LValues {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, err
		}
		cfg := sp.Cfg
		cfg.PatternLength = l
		rec, details, err := RunTKCMDetailed(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig13 l=%d: %w", l, err)
		}
		sum := 0.0
		for _, r := range details {
			sum += r.Epsilon
		}
		res.Rows = append(res.Rows, EpsilonRow{
			L:          l,
			AvgEpsilon: sum / float64(len(details)),
			RMSE:       rec.RMSE,
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 14 — missing-block length
// ---------------------------------------------------------------------------

// BlockLengthRow is one point of Fig. 14.
type BlockLengthRow struct {
	Dataset string
	Label   string // e.g. "2d" or "40%"
	Ticks   int
	RMSE    float64
}

// Fig14BlockLength reproduces Fig. 14: RMSE as the missing block grows —
// days-long blocks on SBR-1d (weeks at paper scale), 10–80% of the dataset
// on Chlorine. The paper's expected shape: a slow, saturating increase.
func Fig14BlockLength(scale Scale) ([]BlockLengthRow, error) {
	var rows []BlockLengthRow

	// SBR-1d: 1..6 days at small scale, 1..6 weeks at paper scale.
	sp := scale.Spec(DSSBR1d)
	unit, unitName := sp.TicksPerDay, "d"
	if scale.Name == "paper" {
		unit, unitName = 7*sp.TicksPerDay, "w"
	}
	for mult := 1; mult <= 6; mult++ {
		length := mult * unit
		frame := sp.Generate()
		start := frame.Len() - length
		sc, err := NewScenario(frame, sp.Target, start, length)
		if err != nil {
			return nil, fmt.Errorf("fig14 SBR-1d %d%s: %w", mult, unitName, err)
		}
		rec, err := RunTKCM(sc, sp.Cfg)
		if err != nil {
			return nil, fmt.Errorf("fig14 SBR-1d %d%s: %w", mult, unitName, err)
		}
		rows = append(rows, BlockLengthRow{
			Dataset: DSSBR1d,
			Label:   fmt.Sprintf("%d%s", mult, unitName),
			Ticks:   length,
			RMSE:    rec.RMSE,
		})
	}

	// Chlorine: block of 10%..80% of the dataset, imputed from the remainder.
	spc := scale.Spec(DSChlorine)
	for _, pct := range []int{10, 20, 40, 60, 80} {
		frame := spc.Generate()
		length := frame.Len() * pct / 100
		start := frame.Len() - length
		sc, err := NewScenario(frame, spc.Target, start, length)
		if err != nil {
			return nil, fmt.Errorf("fig14 Chlorine %d%%: %w", pct, err)
		}
		cfg := spc.Cfg
		rec, err := RunTKCM(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig14 Chlorine %d%%: %w", pct, err)
		}
		rows = append(rows, BlockLengthRow{
			Dataset: DSChlorine,
			Label:   fmt.Sprintf("%d%%", pct),
			Ticks:   length,
			RMSE:    rec.RMSE,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 15 / Fig. 16 — comparison with SPIRIT, MUSCLES, CD
// ---------------------------------------------------------------------------

// ComparisonRow is one algorithm's result on one scenario (Fig. 15 per-block
// series live in ComparisonSeries; Fig. 16 aggregates rows over targets).
type ComparisonRow struct {
	Dataset   string
	Target    string
	Algorithm string
	RMSE      float64
	Elapsed   time.Duration
}

// ComparisonSeries is Fig. 15's qualitative view: the block ground truth and
// every algorithm's recovery.
type ComparisonSeries struct {
	Dataset    string
	Truth      []float64
	Recoveries map[string][]float64
	Rows       []ComparisonRow
}

// CompareAll runs TKCM, SPIRIT, MUSCLES, and CD on one scenario.
func CompareAll(sc *Scenario, cfg core.Config, width int) ([]ComparisonRow, map[string][]float64, error) {
	var rows []ComparisonRow
	series := make(map[string][]float64)

	add := func(rec *Recovery, err error) error {
		if err != nil {
			return err
		}
		rows = append(rows, ComparisonRow{
			Dataset: "", Target: sc.Target,
			Algorithm: rec.Algorithm, RMSE: rec.RMSE, Elapsed: rec.Elapsed,
		})
		series[rec.Algorithm] = rec.Imputed
		return nil
	}

	if err := addErr(add(RunTKCM(sc, cfg))); err != nil {
		return nil, nil, fmt.Errorf("TKCM: %w", err)
	}
	if err := addErr(add(RunSPIRIT(sc, spirit.DefaultConfig(), width))); err != nil {
		return nil, nil, fmt.Errorf("SPIRIT: %w", err)
	}
	if err := addErr(add(RunMUSCLES(sc, muscles.DefaultConfig(), width))); err != nil {
		return nil, nil, fmt.Errorf("MUSCLES: %w", err)
	}
	if err := addErr(add(RunCD(sc, cd.DefaultConfig(), width))); err != nil {
		return nil, nil, fmt.Errorf("CD: %w", err)
	}
	return rows, series, nil
}

func addErr(err error) error { return err }

// Fig15Comparison reproduces Fig. 15: one block per dataset recovered by all
// four algorithms.
func Fig15Comparison(scale Scale) ([]ComparisonSeries, error) {
	var out []ComparisonSeries
	for _, ds := range AllDatasets {
		sp := scale.Spec(ds)
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", ds, err)
		}
		rows, series, err := CompareAll(sc, sp.Cfg, sp.Width)
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", ds, err)
		}
		for i := range rows {
			rows[i].Dataset = ds
		}
		out = append(out, ComparisonSeries{
			Dataset:    ds,
			Truth:      sc.Block.Truth,
			Recoveries: series,
			Rows:       rows,
		})
	}
	return out, nil
}

// SummaryRow is one bar of Fig. 16: an algorithm's RMSE on a dataset,
// averaged over the spec's target series.
type SummaryRow struct {
	Dataset   string
	Algorithm string
	RMSE      float64
}

// Fig16Summary reproduces the paper's headline comparison (Fig. 16): for
// each dataset, impute a block in each of the spec's 4 target series with
// every algorithm and average the RMSE.
func Fig16Summary(scale Scale) ([]SummaryRow, error) {
	var out []SummaryRow
	for _, ds := range AllDatasets {
		sp := scale.Spec(ds)
		sums := make(map[string]float64)
		counts := make(map[string]int)
		for _, target := range sp.Targets {
			sc, err := NewSpecScenario(sp, target)
			if err != nil {
				return nil, fmt.Errorf("fig16 %s/%s: %w", ds, target, err)
			}
			rows, _, err := CompareAll(sc, sp.Cfg, sp.Width)
			if err != nil {
				return nil, fmt.Errorf("fig16 %s/%s: %w", ds, target, err)
			}
			for _, r := range rows {
				if !math.IsNaN(r.RMSE) {
					sums[r.Algorithm] += r.RMSE
					counts[r.Algorithm]++
				}
			}
		}
		for _, alg := range []string{AlgTKCM, AlgSPIRIT, AlgMUSCLES, AlgCD} {
			rmse := math.NaN()
			if counts[alg] > 0 {
				rmse = sums[alg] / float64(counts[alg])
			}
			out = append(out, SummaryRow{Dataset: ds, Algorithm: alg, RMSE: rmse})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 17 — runtime linearity in l, d, k, L
// ---------------------------------------------------------------------------

// RuntimeRow is one point of Fig. 17: the time of a single imputation with
// one parameter varied and the others at their defaults.
type RuntimeRow struct {
	Param         string
	Value         int
	PerImputation time.Duration
}

// Fig17Runtime reproduces Fig. 17 on SBR-1d: per-imputation runtime as a
// function of l, d, k, and L (each varied alone; expected shape: linear in
// every parameter, dominated by L, with k nearly free — Lemma 6.2).
func Fig17Runtime(scale Scale) ([]RuntimeRow, error) {
	sp := scale.Spec(DSSBR1d)
	frame := sp.Generate()
	var rows []RuntimeRow

	timeOne := func(cfg core.Config) (time.Duration, error) {
		sc, err := NewScenario(frame.Clone(), sp.Target, sp.BlockStart, 1)
		if err != nil {
			return 0, err
		}
		// Repeat the single-value imputation to smooth timer noise.
		const reps = 3
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := RunTKCM(sc, cfg); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / reps, nil
	}

	for _, l := range []int{18, 36, 72, 144} {
		cfg := sp.Cfg
		cfg.PatternLength = l
		d, err := timeOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig17 l=%d: %w", l, err)
		}
		rows = append(rows, RuntimeRow{Param: "l", Value: l, PerImputation: d})
	}
	for _, dv := range []int{1, 2, 3, 4, 5} {
		cfg := sp.Cfg
		cfg.D = dv
		d, err := timeOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig17 d=%d: %w", dv, err)
		}
		rows = append(rows, RuntimeRow{Param: "d", Value: dv, PerImputation: d})
	}
	for _, k := range []int{5, 25, 50} {
		cfg := sp.Cfg
		cfg.K = k
		if cfg.Validate() != nil {
			continue // k does not fit this scale's window
		}
		d, err := timeOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig17 k=%d: %w", k, err)
		}
		rows = append(rows, RuntimeRow{Param: "k", Value: k, PerImputation: d})
	}
	for _, frac := range []int{25, 50, 75, 100} {
		cfg := sp.Cfg
		cfg.WindowLength = sp.Cfg.WindowLength * frac / 100
		d, err := timeOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig17 L=%d%%: %w", frac, err)
		}
		rows = append(rows, RuntimeRow{Param: "L", Value: cfg.WindowLength, PerImputation: d})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Sec. 7.4 — performance breakdown
// ---------------------------------------------------------------------------

// BreakdownRow reports the runtime shares of TKCM's phases for a given k
// (Sec. 7.4: pattern extraction ≈ 92% at k = 5; pattern selection climbs to
// ≈ 25% at k = 300).
type BreakdownRow struct {
	K                  int
	ExtractionFraction float64
	SelectionFraction  float64
	// ExtractionOps / SelectionOps are the deterministic operation counts of
	// the two phases (naive profile element ops vs DP cell updates), immune
	// to machine speed — tests assert dominance on these, not on wall clock.
	ExtractionOps int64
	SelectionOps  int64
}

// PerfBreakdown reproduces the Sec. 7.4 phase breakdown on SBR-1d.
func PerfBreakdown(scale Scale) ([]BreakdownRow, error) {
	sp := scale.Spec(DSSBR1d)
	frame := sp.Generate()
	var rows []BreakdownRow
	ks := []int{5, 50}
	// Shrink the large-k probe when the scale's window cannot host it.
	for probe := sp.Cfg; ; {
		probe.K = ks[1]
		if probe.Validate() == nil || ks[1] <= ks[0]+1 {
			break
		}
		ks[1] /= 2
	}
	for _, k := range ks {
		cfg := sp.Cfg
		cfg.K = k
		t := sp.BlockStart
		lo := t - cfg.WindowLength + 1
		if lo < 0 {
			lo = 0
		}
		target := frame.ByName(sp.Target)
		sc, err := NewScenario(frame.Clone(), sp.Target, t, 1)
		if err != nil {
			return nil, err
		}
		_ = target
		work := sc.Frame.ByName(sp.Target)
		refs := make([][]float64, cfg.D)
		for i := 0; i < cfg.D; i++ {
			refs[i] = sc.Frame.ByName(sc.Refs[i]).Values[lo : t+1]
		}
		var agg core.PhaseTimings
		const reps = 5
		for r := 0; r < reps; r++ {
			_, pt, err := core.ImputeProfiled(cfg, work.Values[lo:t+1], refs)
			if err != nil {
				return nil, fmt.Errorf("perf breakdown k=%d: %w", k, err)
			}
			agg.PatternExtraction += pt.PatternExtraction
			agg.PatternSelection += pt.PatternSelection
			agg.ValueImputation += pt.ValueImputation
			agg.ExtractionOps += pt.ExtractionOps
			agg.SelectionOps += pt.SelectionOps
		}
		total := agg.Total()
		rows = append(rows, BreakdownRow{
			K:                  k,
			ExtractionFraction: float64(agg.PatternExtraction) / float64(total),
			SelectionFraction:  float64(agg.PatternSelection) / float64(total),
			ExtractionOps:      agg.ExtractionOps,
			SelectionOps:       agg.SelectionOps,
		})
	}
	return rows, nil
}
