package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"tkcm/internal/core"
)

// WideRow reports one wide-engine throughput measurement: a configuration
// of the streaming engine driven over a very wide stream set with sparse
// missingness — the production-scale workload the demand-driven profiler
// state targets. NsPerTick and AllocsPerTick are the steady-state per-tick
// cost over the measured ticks (warm-up excluded).
type WideRow struct {
	Mode            string  `json:"mode"`
	Width           int     `json:"width"`
	WindowLength    int     `json:"window_length"`
	MissingPerTick  int     `json:"missing_per_tick"`
	Workers         int     `json:"workers"`
	Eager           bool    `json:"eager"`
	SkipDiagnostics bool    `json:"skip_diagnostics"`
	Ticks           int     `json:"ticks"`
	Imputations     int     `json:"imputations"`
	TicksPerSec     float64 `json:"ticks_per_sec"`
	NsPerTick       float64 `json:"ns_per_tick"`
	AllocsPerTick   float64 `json:"allocs_per_tick"`
}

// WideCase selects one engine configuration for the wide scenario.
type WideCase struct {
	Mode            string // label, e.g. "eager" (PR 1 default) or "lazy"
	Eager           bool
	SkipDiagnostics bool
	Workers         int
}

// WideCases returns the standard before/after sweep: the eager PR 1-style
// default against the demand-driven engine, plus the demand-driven engine
// in throughput mode (diagnostics skipped).
func WideCases() []WideCase {
	return []WideCase{
		{Mode: "eager", Eager: true},
		{Mode: "lazy", Eager: false},
		{Mode: "lazy+lean", Eager: false, SkipDiagnostics: true},
	}
}

// wideRefPool is the number of always-present reference streams the targets
// draw from. Keeping it small and shared exercises the per-tick contribution
// cache the way real deployments do (many co-located sensors share the same
// few high-quality references).
const wideRefPool = 12

// WideScenario deterministically generates the wide workload: width streams
// whose first width−wideRefPool entries are targets referencing overlapping
// triples from the always-present trailing pool, a rotating subset of the
// targets missing per steady-state tick. It is shared by the tkcm-bench
// "wide" experiment and the repo-root BenchmarkEngineWide so the two always
// measure the same scenario.
type WideScenario struct {
	Width          int
	Targets        int
	MissingPerTick int
	noise          uint64
}

// NewWideScenario validates the dimensions and derives the target and
// missing-per-tick counts from the missing fraction (clamped to [1,
// Targets]).
func NewWideScenario(width int, missingFrac float64) (*WideScenario, error) {
	if width <= wideRefPool {
		return nil, fmt.Errorf("experiments: wide width %d must exceed the reference pool %d", width, wideRefPool)
	}
	targets := width - wideRefPool
	nMiss := int(missingFrac * float64(width))
	if nMiss < 1 {
		nMiss = 1
	}
	if nMiss > targets {
		nMiss = targets
	}
	return &WideScenario{Width: width, Targets: targets, MissingPerTick: nMiss, noise: 0x9E3779B97F4A7C15}, nil
}

// Names returns the stream names, targets first, reference pool last.
func (s *WideScenario) Names() []string {
	names := make([]string, s.Width)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	return names
}

// Refs returns the target reference sets: overlapping triples drawn from
// the always-present pool, so missing targets share reference streams (and
// often whole reference sets) within a tick.
func (s *WideScenario) Refs() map[string]core.ReferenceSet {
	names := s.Names()
	refs := make(map[string]core.ReferenceSet, s.Targets)
	for i := 0; i < s.Targets; i++ {
		refs[names[i]] = core.ReferenceSet{Stream: names[i], Candidates: []string{
			names[s.Targets+i%wideRefPool],
			names[s.Targets+(i+4)%wideRefPool],
			names[s.Targets+(i+8)%wideRefPool],
		}}
	}
	return refs
}

// FillRow writes tick t's measurements into row: phase-shifted daily
// sinusoids plus cheap xorshift noise, generated on the fly (materializing
// width × winLen values up front would dwarf the engine's own footprint).
func (s *WideScenario) FillRow(t int, row []float64) {
	ph := 2 * math.Pi * float64(t) / 288
	for j := range row {
		s.noise ^= s.noise << 13
		s.noise ^= s.noise >> 7
		s.noise ^= s.noise << 17
		row[j] = math.Sin(ph+0.61*float64(j)) + float64(s.noise%1000)/4000
	}
}

// MarkMissing drops the steady-state tick t's rotating subset of target
// streams from row (t counted from the start of the measured phase): a
// contiguous block of MissingPerTick targets whose start moves every tick,
// so the indices are always distinct and every target cycles through being
// missing. A block still spans every reference triple of the pool (the
// triples repeat with period wideRefPool), so reference sharing is
// exercised the same way a scattered subset would.
func (s *WideScenario) MarkMissing(t int, row []float64) {
	base := (t * 131) % s.Targets
	for x := 0; x < s.MissingPerTick; x++ {
		row[(base+x)%s.Targets] = math.NaN()
	}
}

// WideEngineThroughput streams the WideScenario workload through the
// continuous engine: the window is warmed completely, then measureTicks
// steady-state ticks run with missingFrac of the streams missing per tick.
// It reports wall-clock and allocator cost per tick.
func WideEngineThroughput(width, winLen, measureTicks int, missingFrac float64, wc WideCase) (WideRow, error) {
	s, err := NewWideScenario(width, missingFrac)
	if err != nil {
		return WideRow{}, err
	}
	cfg := core.Config{
		K:               5,
		PatternLength:   72,
		D:               3,
		WindowLength:    winLen,
		Norm:            core.L2,
		Selection:       core.SelectDP,
		Profiler:        core.ProfilerIncremental,
		EagerProfiler:   wc.Eager,
		SkipDiagnostics: wc.SkipDiagnostics,
		Workers:         wc.Workers,
	}
	eng, err := core.NewEngine(cfg, s.Names(), s.Refs())
	if err != nil {
		return WideRow{}, err
	}
	defer eng.Close()
	row := make([]float64, width)
	for t := 0; t < winLen; t++ {
		s.FillRow(t, row)
		if _, _, err := eng.Tick(row); err != nil {
			return WideRow{}, err
		}
	}
	impBefore := eng.Stats.Imputations
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for t := 0; t < measureTicks; t++ {
		s.FillRow(winLen+t, row)
		s.MarkMissing(t, row)
		if _, _, err := eng.Tick(row); err != nil {
			return WideRow{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return WideRow{
		Mode:            wc.Mode,
		Width:           width,
		WindowLength:    winLen,
		MissingPerTick:  s.MissingPerTick,
		Workers:         cfg.Workers,
		Eager:           wc.Eager,
		SkipDiagnostics: wc.SkipDiagnostics,
		Ticks:           measureTicks,
		Imputations:     eng.Stats.Imputations - impBefore,
		TicksPerSec:     float64(measureTicks) / elapsed.Seconds(),
		NsPerTick:       float64(elapsed.Nanoseconds()) / float64(measureTicks),
		AllocsPerTick:   float64(ms1.Mallocs-ms0.Mallocs) / float64(measureTicks),
	}, nil
}
