package experiments

import (
	"fmt"
	"math"
	"time"

	"tkcm/internal/baseline"
	"tkcm/internal/cd"
	"tkcm/internal/core"
	"tkcm/internal/dataset"
	"tkcm/internal/muscles"
	"tkcm/internal/spirit"
	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

// Algorithm names used across results.
const (
	AlgTKCM        = "TKCM"
	AlgSPIRIT      = "SPIRIT"
	AlgMUSCLES     = "MUSCLES"
	AlgCD          = "CD"
	AlgInterpolate = "Interp"
	AlgKNNI        = "kNNI"
)

// Scenario is one imputation task: a frame with a missing block injected
// into the target series, plus the ground truth of the block.
type Scenario struct {
	Frame  *timeseries.Frame
	Target string
	Block  dataset.Block
	// Refs is the ordered candidate reference list for the target, ranked on
	// pre-block data. All algorithms that take explicit references use the
	// same list for fairness.
	Refs []string
}

// NewScenario erases ticks [start, start+length) of target in frame (in
// place) and ranks the candidate references on the data before the block.
func NewScenario(frame *timeseries.Frame, target string, start, length int) (*Scenario, error) {
	block, err := dataset.InjectBlock(frame, target, start, length)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Frame: frame, Target: target, Block: block}
	sc.Refs = rankRefs(frame, target, start)
	return sc, nil
}

// NewScenarioExpert is NewScenario with the paper's reference policy: the
// candidate references come in "expert" order (frame order, skipping the
// target), NOT ranked by correlation. This matters on the shifted datasets:
// correlation ranking would silently pick the least-shifted references and
// undo the phase shifts the experiments are designed to exercise, whereas
// the paper's expert lists (e.g. geographically nearby stations) know
// nothing about shifts.
func NewScenarioExpert(frame *timeseries.Frame, target string, start, length int) (*Scenario, error) {
	block, err := dataset.InjectBlock(frame, target, start, length)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Frame: frame, Target: target, Block: block}
	for _, name := range frame.Names() {
		if name != target {
			sc.Refs = append(sc.Refs, name)
		}
	}
	return sc, nil
}

// rankRefs orders the other series by descending |Pearson| with the target
// over ticks [0, before).
func rankRefs(frame *timeseries.Frame, target string, before int) []string {
	histories := make(map[string][]float64, frame.Width())
	for _, s := range frame.Series {
		end := before
		if end > s.Len() {
			end = s.Len()
		}
		histories[s.Name] = s.Values[:end]
	}
	return core.RankCandidates(target, histories).Candidates
}

// Recovery is the output of one algorithm on one scenario.
type Recovery struct {
	Algorithm string
	// Imputed holds the recovered values for the block ticks, aligned with
	// the scenario's Block.Truth.
	Imputed []float64
	// RMSE over the block.
	RMSE float64
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// RunTKCM recovers the scenario's block with TKCM: each missing tick is
// imputed in stream order from a window of cfg.WindowLength ticks ending at
// that tick, with earlier imputations visible to later ones (continuous
// imputation, Sec. 3). The d references are the scenario's top-ranked
// candidates.
func RunTKCM(sc *Scenario, cfg core.Config) (*Recovery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sc.Refs) < cfg.D {
		return nil, fmt.Errorf("experiments: scenario has %d candidate references, need d=%d", len(sc.Refs), cfg.D)
	}
	target := sc.Frame.ByName(sc.Target)
	work := target.Clone()
	refs := make([][]float64, cfg.D)
	for i := 0; i < cfg.D; i++ {
		refs[i] = sc.Frame.ByName(sc.Refs[i]).Values
	}
	imputed := make([]float64, sc.Block.Len())
	start := time.Now()
	for off := 0; off < sc.Block.Len(); off++ {
		t := sc.Block.Start + off
		lo := t - cfg.WindowLength + 1
		if lo < 0 {
			lo = 0
		}
		sWin := work.Values[lo : t+1]
		refWins := make([][]float64, cfg.D)
		for i, r := range refs {
			refWins[i] = r[lo : t+1]
		}
		res, err := core.Impute(cfg, sWin, refWins)
		if err != nil {
			return nil, fmt.Errorf("experiments: TKCM at tick %d: %w", t, err)
		}
		work.Values[t] = res.Value
		imputed[off] = res.Value
	}
	elapsed := time.Since(start)
	return &Recovery{
		Algorithm: AlgTKCM,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}, nil
}

// RunTKCMDetailed is RunTKCM but also returns the per-tick Result
// diagnostics (used by the ε experiment, Fig. 13b).
func RunTKCMDetailed(sc *Scenario, cfg core.Config) (*Recovery, []*core.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(sc.Refs) < cfg.D {
		return nil, nil, fmt.Errorf("experiments: scenario has %d candidate references, need d=%d", len(sc.Refs), cfg.D)
	}
	target := sc.Frame.ByName(sc.Target)
	work := target.Clone()
	refs := make([][]float64, cfg.D)
	for i := 0; i < cfg.D; i++ {
		refs[i] = sc.Frame.ByName(sc.Refs[i]).Values
	}
	imputed := make([]float64, sc.Block.Len())
	results := make([]*core.Result, sc.Block.Len())
	start := time.Now()
	for off := 0; off < sc.Block.Len(); off++ {
		t := sc.Block.Start + off
		lo := t - cfg.WindowLength + 1
		if lo < 0 {
			lo = 0
		}
		sWin := work.Values[lo : t+1]
		refWins := make([][]float64, cfg.D)
		for i, r := range refs {
			refWins[i] = r[lo : t+1]
		}
		res, err := core.Impute(cfg, sWin, refWins)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: TKCM at tick %d: %w", t, err)
		}
		work.Values[t] = res.Value
		imputed[off] = res.Value
		results[off] = res
	}
	elapsed := time.Since(start)
	rec := &Recovery{
		Algorithm: AlgTKCM,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}
	return rec, results, nil
}

// RunSPIRIT recovers the block with the SPIRIT tracker streaming over the
// scenario range: the target plus its top-ranked references, fed row by row.
func RunSPIRIT(sc *Scenario, cfg spirit.Config, width int) (*Recovery, error) {
	data, lo := scenarioMatrix(sc, width)
	start := time.Now()
	out, err := spirit.Recover(cfg, data)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	imputed := extractBlock(sc, out, lo)
	return &Recovery{
		Algorithm: AlgSPIRIT,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}, nil
}

// RunMUSCLES recovers the block with the MUSCLES tracker (target column 0).
func RunMUSCLES(sc *Scenario, cfg muscles.Config, width int) (*Recovery, error) {
	data, lo := scenarioMatrix(sc, width)
	start := time.Now()
	out, err := muscles.Recover(cfg, data, 0)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	imputed := make([]float64, sc.Block.Len())
	for off := range imputed {
		imputed[off] = out[sc.Block.Start-lo+off]
	}
	return &Recovery{
		Algorithm: AlgMUSCLES,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}, nil
}

// RunCD recovers the block with centroid-decomposition recovery over the
// scenario matrix (target column 0).
func RunCD(sc *Scenario, cfg cd.Config, width int) (*Recovery, error) {
	data, lo := scenarioMatrix(sc, width)
	start := time.Now()
	out, err := cd.Recover(cfg, data)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	imputed := make([]float64, sc.Block.Len())
	for off := range imputed {
		imputed[off] = out[sc.Block.Start-lo+off][0]
	}
	return &Recovery{
		Algorithm: AlgCD,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}, nil
}

// RunInterpolate recovers the block by linear interpolation on the target
// alone (the Sec. 2 sanity floor).
func RunInterpolate(sc *Scenario) *Recovery {
	target := sc.Frame.ByName(sc.Target)
	start := time.Now()
	filled := baseline.Interpolate(target.Values)
	elapsed := time.Since(start)
	imputed := make([]float64, sc.Block.Len())
	copy(imputed, filled[sc.Block.Start:sc.Block.End()])
	return &Recovery{
		Algorithm: AlgInterpolate,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}
}

// RunKNNI recovers the block with k-nearest-neighbour imputation over the
// scenario matrix (the l = 1 style nearest-neighbour method of Sec. 2).
func RunKNNI(sc *Scenario, k, width int) *Recovery {
	data, lo := scenarioMatrix(sc, width)
	start := time.Now()
	out := baseline.KNNI(baseline.KNNIConfig{K: k, Weighted: true}, data, 0)
	elapsed := time.Since(start)
	imputed := make([]float64, sc.Block.Len())
	for off := range imputed {
		imputed[off] = out[sc.Block.Start-lo+off]
	}
	return &Recovery{
		Algorithm: AlgKNNI,
		Imputed:   imputed,
		RMSE:      stats.RMSE(sc.Block.Truth, imputed),
		Elapsed:   elapsed,
	}
}

// scenarioMatrix builds the tick-major matrix [target, ref1, ..., ref_{width-1}]
// over the whole frame (all algorithms see the same L measurements per
// stream, as in Sec. 7.3.3). It returns the matrix and the first tick it
// covers (always 0 here; kept explicit for clarity at call sites).
func scenarioMatrix(sc *Scenario, width int) ([][]float64, int) {
	if width < 2 {
		width = 2
	}
	if width > len(sc.Refs)+1 {
		width = len(sc.Refs) + 1
	}
	cols := make([][]float64, 0, width)
	cols = append(cols, sc.Frame.ByName(sc.Target).Values)
	for i := 0; i < width-1; i++ {
		cols = append(cols, sc.Frame.ByName(sc.Refs[i]).Values)
	}
	n := sc.Frame.Len()
	data := make([][]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = c[t]
		}
		data[t] = row
	}
	return data, 0
}

// extractBlock pulls the target column's block ticks out of a recovered
// tick-major matrix.
func extractBlock(sc *Scenario, out [][]float64, lo int) []float64 {
	imputed := make([]float64, sc.Block.Len())
	for off := range imputed {
		imputed[off] = out[sc.Block.Start-lo+off][0]
	}
	return imputed
}

// MeanOf averages the non-NaN entries of xs (NaN if none). Exposed for the
// CLI's aggregate reporting.
func MeanOf(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
