package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table renders rows of string cells as an aligned plain-text table with a
// header, matching what cmd/tkcm-bench prints for every experiment.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Sparkline renders xs as a compact unicode sparkline — enough to eyeball
// the Fig. 12/15 series comparisons in a terminal.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if width <= 0 || width > len(xs) {
		width = len(xs)
	}
	// Downsample by averaging buckets.
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range xs[lo:hi] {
			sum += v
		}
		buckets[i] = sum / float64(hi-lo)
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
