package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// AccuracySchema identifies the committed ACCURACY.json baseline format.
const AccuracySchema = "tkcm-accuracy-v1"

// AccuracyCell is one pinned cell of the accuracy baseline.
type AccuracyCell struct {
	RMSE  JSONFloat `json:"rmse"`
	SMAPE JSONFloat `json:"smape"`
}

// AccuracyBaseline is the committed accuracy pin (ACCURACY.json): per-cell
// RMSE/SMAPE for every grid cell of a reference run. The CI gate compares a
// fresh quick-grid run against it and fails on TKCM regressions.
type AccuracyBaseline struct {
	Schema string `json:"schema"`
	Grid   string `json:"grid"`
	Seed   uint64 `json:"seed"`
	Scale  string `json:"scale"`
	// Cells maps CellResult.Key() ("dataset/scenario/l=N/alg") to metrics.
	Cells map[string]AccuracyCell `json:"cells"`
}

// NewBaseline pins a grid result as an accuracy baseline.
func NewBaseline(res *GridResult) *AccuracyBaseline {
	b := &AccuracyBaseline{
		Schema: AccuracySchema,
		Grid:   res.Grid,
		Seed:   res.Seed,
		Scale:  res.Scale,
		Cells:  make(map[string]AccuracyCell, len(res.Cells)),
	}
	for _, c := range res.Cells {
		b.Cells[c.Key()] = AccuracyCell{RMSE: c.RMSE, SMAPE: c.SMAPE}
	}
	return b
}

// LoadBaseline reads a committed ACCURACY.json.
func LoadBaseline(path string) (*AccuracyBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b AccuracyBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("experiments: bad accuracy baseline: %w", err)
	}
	if b.Schema != AccuracySchema {
		return nil, fmt.Errorf("experiments: accuracy baseline schema %q, want %q", b.Schema, AccuracySchema)
	}
	return &b, nil
}

// Save writes the baseline with stable key order, trailing newline included,
// so re-baselining produces minimal diffs.
func (b *AccuracyBaseline) Save(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Gate compares a fresh grid run against the pinned baseline and returns one
// failure line per regressed TKCM cell. Only TKCM cells gate — the baselines
// are comparison context, not a contract this repo maintains — and a cell
// regresses when RMSE or SMAPE exceeds the pinned value by more than tol
// (fractional, e.g. 0.05) plus a small absolute epsilon for near-zero pins.
// A baseline TKCM cell missing from the run fails too: silently dropping a
// cell must not pass the gate. Cells present in the run but absent from the
// baseline are ignored (a grown grid gates only what is pinned until the
// baseline is refreshed).
func (b *AccuracyBaseline) Gate(res *GridResult, tol float64) []string {
	const eps = 1e-9
	current := make(map[string]CellResult, len(res.Cells))
	for _, c := range res.Cells {
		current[c.Key()] = c
	}
	keys := make([]string, 0, len(b.Cells))
	for k := range b.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failures []string
	for _, key := range keys {
		pin := b.Cells[key]
		cell, ok := current[key]
		if !ok {
			if isTKCMKey(key) {
				failures = append(failures, fmt.Sprintf("%s: pinned cell missing from this run (re-baseline ACCURACY.json if the grid legitimately changed)", key))
			}
			continue
		}
		if !isTKCMKey(key) {
			continue
		}
		check := func(metric string, pinned, got JSONFloat) {
			p, g := float64(pinned), float64(got)
			if math.IsNaN(p) {
				return // nothing pinned to regress against
			}
			if math.IsNaN(g) {
				failures = append(failures, fmt.Sprintf("%s: %s is NaN (baseline %.6g)", key, metric, p))
				return
			}
			if g > p*(1+tol)+eps {
				failures = append(failures, fmt.Sprintf("%s: %s %.6g exceeds baseline %.6g by more than %.0f%%", key, metric, g, p, tol*100))
			}
		}
		check("RMSE", pin.RMSE, cell.RMSE)
		check("SMAPE", pin.SMAPE, cell.SMAPE)
	}
	return failures
}

// isTKCMKey reports whether a baseline cell key names a TKCM cell.
func isTKCMKey(key string) bool {
	suffix := "/" + AlgTKCM
	return len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix
}
