// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 7). Each fig* function returns typed rows that the
// tkcm-bench CLI and the root bench suite render; DESIGN.md §3 maps paper
// artifacts to the functions here.
//
// The harness follows the paper's protocol: generate a dataset, erase a
// block of consecutive values from a target series (simulating a sensor
// failure), recover the block with each algorithm, and report the RMSE over
// the erased ticks.
package experiments
