package experiments

import (
	"fmt"

	"tkcm/internal/dtw"
	"tkcm/internal/timeseries"
)

// AlignmentRow is one arm of the Sec. 8 future-work experiment: TKCM on the
// shifted series with a long pattern, versus TKCM with l = 1 on series that
// were first re-aligned by their estimated lags.
type AlignmentRow struct {
	Variant string // "shifted l=72", "aligned l=1", "aligned l=72", "shifted l=1"
	RMSE    float64
}

// AlignmentExperiment runs the comparison the paper proposes in Sec. 8 on
// the SBR-1d dataset: estimate each reference's lag against the target
// (dtw.BestLag over the pre-block history), re-align the references, and
// compare TKCM's accuracy with l = 1 on the aligned series against the
// standard configuration on the shifted series.
func AlignmentExperiment(scale Scale) ([]AlignmentRow, error) {
	sp := scale.Spec(DSSBR1d)

	run := func(align bool, l int) (float64, error) {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			return 0, err
		}
		if align {
			target := sc.Frame.ByName(sc.Target)
			maxLag := sp.TicksPerDay
			for _, name := range sc.Refs[:sp.Cfg.D] {
				ref := sc.Frame.ByName(name)
				lag := dtw.BestLag(
					target.Values[:sc.Block.Start],
					ref.Values[:sc.Block.Start],
					maxLag,
				)
				aligned := dtw.Align(ref.Values, lag)
				copy(ref.Values, aligned)
			}
		}
		cfg := sp.Cfg
		cfg.PatternLength = l
		rec, err := RunTKCM(sc, cfg)
		if err != nil {
			return 0, err
		}
		return rec.RMSE, nil
	}

	arms := []struct {
		name  string
		align bool
		l     int
	}{
		{"shifted l=1", false, 1},
		{fmt.Sprintf("shifted l=%d", sp.Cfg.PatternLength), false, sp.Cfg.PatternLength},
		{"aligned l=1", true, 1},
		{fmt.Sprintf("aligned l=%d", sp.Cfg.PatternLength), true, sp.Cfg.PatternLength},
	}
	rows := make([]AlignmentRow, 0, len(arms))
	for _, arm := range arms {
		rmse, err := run(arm.align, arm.l)
		if err != nil {
			return nil, fmt.Errorf("alignment arm %q: %w", arm.name, err)
		}
		rows = append(rows, AlignmentRow{Variant: arm.name, RMSE: rmse})
	}
	return rows, nil
}

// estimateLags is a test hook exposing the per-reference lag estimation.
func estimateLags(frame *timeseries.Frame, target string, refs []string, before, maxLag int) []int {
	t := frame.ByName(target)
	lags := make([]int, len(refs))
	for i, name := range refs {
		lags[i] = dtw.BestLag(t.Values[:before], frame.ByName(name).Values[:before], maxLag)
	}
	return lags
}
