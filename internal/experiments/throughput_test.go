package experiments

import (
	"testing"

	"tkcm/internal/core"
)

// TestEngineThroughputSmoke runs one incremental-profiler throughput
// measurement at the small scale and sanity-checks the reported rates.
func TestEngineThroughputSmoke(t *testing.T) {
	row, err := EngineThroughput(SmallScale(), core.ProfilerIncremental, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Profiler != "incremental" || row.Workers != 2 {
		t.Fatalf("row misreports configuration: %+v", row)
	}
	if row.MissingStreams < 1 {
		t.Fatalf("missing streams = %d", row.MissingStreams)
	}
	if row.Ticks <= 0 || row.Imputations <= 0 {
		t.Fatalf("no work measured: %+v", row)
	}
	if row.TicksPerSec <= 0 || row.PerImputation <= 0 {
		t.Fatalf("non-positive rates: %+v", row)
	}
	// Every 5th tick drops MissingStreams targets.
	want := (row.Ticks + 4) / 5 * row.MissingStreams
	if diff := row.Imputations - want; diff < -row.MissingStreams || diff > row.MissingStreams {
		t.Fatalf("imputations = %d, want ≈ %d", row.Imputations, want)
	}
}
