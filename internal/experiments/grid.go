package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"tkcm/internal/cd"
	"tkcm/internal/core"
	"tkcm/internal/dataset"
	"tkcm/internal/muscles"
	"tkcm/internal/spirit"
	"tkcm/internal/stats"
)

// GridSchema is the spec/summary schema identifier written into every grid
// artifact; bump it when the cell key format or the summary layout changes.
const GridSchema = "tkcm-grid-v1"

// GridScenario selects one missingness family of internal/dataset plus its
// knobs. Zero knobs take the family defaults (dataset.ScenarioConfig).
type GridScenario struct {
	Kind       string  `json:"kind"`
	RefRate    float64 `json:"ref_rate,omitempty"`
	MeanRun    int     `json:"mean_run,omitempty"`
	Corr       float64 `json:"corr,omitempty"`
	LevelShift float64 `json:"level_shift,omitempty"`
	ScaleShift float64 `json:"scale_shift,omitempty"`
	DriftPday  float64 `json:"drift_per_day,omitempty"`
}

// GridQuick is the CI-sized restriction of a grid: the subset of datasets and
// pattern lengths the `-quick` accuracy gate runs on every PR. Empty fields
// default to the first two datasets and the first pattern length.
type GridQuick struct {
	Datasets       []string `json:"datasets,omitempty"`
	PatternLengths []int    `json:"pattern_lengths,omitempty"`
}

// SLOSweep declares one serving-SLO cell: a real tkcm-serve process sized
// shards × tenants × width, driven at the given missing rate (with optional
// live-migration churn) for the duration, then judged against the latency
// budgets from the server's /metrics histograms.
type SLOSweep struct {
	Name     string  `json:"name"`
	Shards   int     `json:"shards"`
	Tenants  int     `json:"tenants"`
	Width    int     `json:"width"`
	Batch    int     `json:"batch,omitempty"`
	Missing  float64 `json:"missing"`
	Duration string  `json:"duration"`
	// MigrateEvery, when set, walks one tenant to another shard on this
	// interval throughout the sweep (live-migration churn).
	MigrateEvery string `json:"migrate_every,omitempty"`
	// BudgetAckP99Ms is the end-to-end ack budget: the sweep fails when the
	// p99 of tkcm_ack_seconds exceeds it.
	BudgetAckP99Ms float64 `json:"budget_ack_p99_ms"`
	// BudgetStageP99Ms optionally bounds individual tkcm_tick_stage_seconds
	// stages (decode, queue, engine, wal_commit, ack) the same way.
	BudgetStageP99Ms map[string]float64 `json:"budget_stage_p99_ms,omitempty"`
}

// GridSpec is the declarative paper grid: dataset × scenario × pattern-length
// × algorithm, all runs derived from one seed. It is the experiments.json
// schema.
type GridSpec struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Seed drives every scenario injection; per-cell seeds are derived from
	// it deterministically.
	Seed       uint64         `json:"seed"`
	Datasets   []string       `json:"datasets"`
	Algorithms []string       `json:"algorithms"`
	Scenarios  []GridScenario `json:"scenarios"`
	// PatternLengths sweeps TKCM's l; other algorithms are unaffected by l
	// and run once per (dataset, scenario) at the first value. Empty means
	// the scale's default configuration.
	PatternLengths []int `json:"pattern_lengths,omitempty"`
	// TargetsPerDataset imputes that many of the spec's target series per
	// cell and averages the metrics. Default 1 (the headline target).
	TargetsPerDataset int       `json:"targets_per_dataset,omitempty"`
	Quick             GridQuick `json:"quick"`
	// SLO declares the serving sweeps (run by cmd/tkcm-grid -slo; not part
	// of the accuracy grid).
	SLO struct {
		Sweeps []SLOSweep `json:"sweeps,omitempty"`
	} `json:"slo"`
}

// knownAlgorithms is the set RunGrid can execute.
var knownAlgorithms = map[string]bool{
	AlgTKCM: true, AlgSPIRIT: true, AlgMUSCLES: true, AlgCD: true,
	AlgInterpolate: true, AlgKNNI: true,
}

// LoadGridSpec reads and validates an experiments.json grid spec.
func LoadGridSpec(path string) (*GridSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseGridSpec(raw)
}

// ParseGridSpec decodes and validates a grid spec.
func ParseGridSpec(raw []byte) (*GridSpec, error) {
	var spec GridSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("experiments: bad grid spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the spec against the known datasets, algorithms, and
// scenario kinds, and normalizes defaults (seed 1, one target per dataset).
func (s *GridSpec) Validate() error {
	if s.Schema != "" && s.Schema != GridSchema {
		return fmt.Errorf("experiments: grid spec schema %q, want %q", s.Schema, GridSchema)
	}
	if s.Name == "" {
		return fmt.Errorf("experiments: grid spec needs a name")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Datasets) == 0 {
		return fmt.Errorf("experiments: grid spec lists no datasets")
	}
	known := make(map[string]bool, len(AllDatasets))
	for _, ds := range AllDatasets {
		known[ds] = true
	}
	for _, ds := range s.Datasets {
		if !known[ds] {
			return fmt.Errorf("experiments: unknown dataset %q (have %v)", ds, AllDatasets)
		}
	}
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("experiments: grid spec lists no algorithms")
	}
	for _, alg := range s.Algorithms {
		if !knownAlgorithms[alg] {
			return fmt.Errorf("experiments: unknown algorithm %q", alg)
		}
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("experiments: grid spec lists no scenarios")
	}
	kinds := make(map[dataset.ScenarioKind]bool, len(dataset.AllScenarioKinds))
	for _, k := range dataset.AllScenarioKinds {
		kinds[k] = true
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for _, sc := range s.Scenarios {
		if !kinds[dataset.ScenarioKind(sc.Kind)] {
			return fmt.Errorf("experiments: unknown scenario kind %q", sc.Kind)
		}
		if seen[sc.Kind] {
			return fmt.Errorf("experiments: scenario kind %q listed twice", sc.Kind)
		}
		seen[sc.Kind] = true
	}
	for _, l := range s.PatternLengths {
		if l <= 0 {
			return fmt.Errorf("experiments: pattern length %d out of range", l)
		}
	}
	if s.TargetsPerDataset < 0 {
		return fmt.Errorf("experiments: targets_per_dataset %d out of range", s.TargetsPerDataset)
	}
	if s.TargetsPerDataset == 0 {
		s.TargetsPerDataset = 1
	}
	for _, ds := range s.Quick.Datasets {
		if !known[ds] {
			return fmt.Errorf("experiments: unknown quick dataset %q", ds)
		}
	}
	for i, sw := range s.SLO.Sweeps {
		if sw.Name == "" {
			return fmt.Errorf("experiments: slo sweep %d needs a name", i)
		}
		if sw.Shards <= 0 || sw.Tenants <= 0 || sw.Width <= 0 {
			return fmt.Errorf("experiments: slo sweep %q needs positive shards/tenants/width", sw.Name)
		}
		if sw.Duration == "" {
			return fmt.Errorf("experiments: slo sweep %q needs a duration", sw.Name)
		}
		if sw.BudgetAckP99Ms <= 0 {
			return fmt.Errorf("experiments: slo sweep %q needs a positive ack budget", sw.Name)
		}
	}
	return nil
}

// quickView returns the CI-sized restriction of the spec: the declared quick
// datasets (default: first two) and pattern lengths (default: first), with
// one target per dataset.
func (s *GridSpec) quickView() GridSpec {
	q := *s
	q.Datasets = s.Quick.Datasets
	if len(q.Datasets) == 0 {
		q.Datasets = s.Datasets
		if len(q.Datasets) > 2 {
			q.Datasets = q.Datasets[:2]
		}
	}
	q.PatternLengths = s.Quick.PatternLengths
	if len(q.PatternLengths) == 0 && len(s.PatternLengths) > 0 {
		q.PatternLengths = s.PatternLengths[:1]
	}
	q.TargetsPerDataset = 1
	return q
}

// CellResult is one grid cell: one algorithm's accuracy on one
// (dataset, scenario, pattern-length) task, averaged over the configured
// targets. Metrics are NaN when no comparable tick exists.
type CellResult struct {
	Dataset  string `json:"dataset"`
	Scenario string `json:"scenario"`
	// PatternLength is TKCM's l for this cell; algorithms that have no l
	// carry the grid's first value so cell keys stay uniform.
	PatternLength int       `json:"l"`
	Algorithm     string    `json:"algorithm"`
	Targets       int       `json:"targets"`
	BlockLen      int       `json:"block_len"`
	RMSE          JSONFloat `json:"rmse"`
	SMAPE         JSONFloat `json:"smape"`
	MAE           JSONFloat `json:"mae"`
}

// Key returns the cell's stable identity, the accuracy-baseline map key.
func (c CellResult) Key() string {
	return fmt.Sprintf("%s/%s/l=%d/%s", c.Dataset, c.Scenario, c.PatternLength, c.Algorithm)
}

// GridResult is a full grid run: the spec identity plus every cell, in
// deterministic (dataset, scenario, l, algorithm) order.
type GridResult struct {
	Schema string       `json:"schema"`
	Grid   string       `json:"grid"`
	Seed   uint64       `json:"seed"`
	Scale  string       `json:"scale"`
	Quick  bool         `json:"quick"`
	Cells  []CellResult `json:"cells"`
}

// GridOptions tunes one RunGrid call.
type GridOptions struct {
	// Quick restricts the grid to the spec's CI-sized quick view.
	Quick bool
	// Perturb, when set, mutates every TKCM cell configuration before the
	// engine runs. It exists so tests can degrade the engine (e.g. force
	// PatternLength 1) and prove the accuracy gate trips; production runs
	// leave it nil.
	Perturb func(*core.Config)
	// Progress, when set, receives one call per completed cell.
	Progress func(c CellResult)
}

// RunGrid executes the spec's full dataset × scenario × pattern-length ×
// algorithm grid at the given scale. Every run with identical (scale, spec,
// opts.Quick) inputs produces identical results: scenarios are seeded from
// the spec seed, the engine runs serially, and cells are emitted in a fixed
// order.
func RunGrid(scale Scale, spec *GridSpec, opts GridOptions) (*GridResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	view := *spec
	if opts.Quick {
		view = spec.quickView()
	}
	lengths := view.PatternLengths
	if len(lengths) == 0 {
		lengths = []int{0} // 0 = the scale's default PatternLength
	}
	res := &GridResult{
		Schema: GridSchema,
		Grid:   view.Name,
		Seed:   view.Seed,
		Scale:  scale.Name,
		Quick:  opts.Quick,
	}
	for _, ds := range view.Datasets {
		sp := scale.Spec(ds)
		targets := sp.Targets
		if len(targets) == 0 {
			targets = []string{sp.Target}
		}
		if len(targets) > view.TargetsPerDataset {
			targets = targets[:view.TargetsPerDataset]
		}
		for _, gsc := range view.Scenarios {
			for _, l := range lengths {
				for _, alg := range view.Algorithms {
					cell, err := runGridCell(sp, gsc, l, alg, targets, view.Seed, opts.Perturb)
					if err != nil {
						return nil, fmt.Errorf("experiments: cell %s/%s/l=%d/%s: %w", ds, gsc.Kind, l, alg, err)
					}
					res.Cells = append(res.Cells, cell)
					if opts.Progress != nil {
						opts.Progress(cell)
					}
				}
			}
		}
	}
	sort.Slice(res.Cells, func(i, j int) bool { return res.Cells[i].Key() < res.Cells[j].Key() })
	return res, nil
}

// GridCellKeys enumerates the cell keys a RunGrid call would produce, in the
// emitted (sorted) order, without running any cell — a cheap spec preview.
func GridCellKeys(scale Scale, spec *GridSpec, quick bool) []string {
	view := *spec
	if quick {
		view = spec.quickView()
	}
	lengths := view.PatternLengths
	if len(lengths) == 0 {
		lengths = []int{0}
	}
	var keys []string
	for _, ds := range view.Datasets {
		sp := scale.Spec(ds)
		for _, gsc := range view.Scenarios {
			for _, l := range lengths {
				resolved := l
				if resolved == 0 {
					resolved = sp.Cfg.PatternLength
				}
				for _, alg := range view.Algorithms {
					keys = append(keys, CellResult{
						Dataset: ds, Scenario: gsc.Kind, PatternLength: resolved, Algorithm: alg,
					}.Key())
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// runGridCell runs one algorithm over the configured targets of one
// (dataset, scenario, l) task and averages the metrics.
func runGridCell(sp Spec, gsc GridScenario, l int, alg string, targets []string, seed uint64, perturb func(*core.Config)) (CellResult, error) {
	cfg := sp.Cfg
	if l > 0 {
		cfg.PatternLength = l
	}
	cell := CellResult{
		Dataset:       sp.Dataset,
		Scenario:      gsc.Kind,
		PatternLength: cfg.PatternLength,
		Algorithm:     alg,
		Targets:       len(targets),
		BlockLen:      sp.BlockLen,
	}
	var rmses, smapes, maes []float64
	for _, target := range targets {
		sc, mask, err := newGridScenario(sp, gsc, target, seed)
		if err != nil {
			return cell, err
		}
		var imputed []float64
		switch alg {
		case AlgTKCM:
			tcfg := cfg
			if perturb != nil {
				perturb(&tcfg)
			}
			imputed, err = runEngineTKCM(sc, tcfg)
		case AlgSPIRIT:
			var rec *Recovery
			rec, err = RunSPIRIT(sc, spirit.DefaultConfig(), sp.Width)
			if rec != nil {
				imputed = rec.Imputed
			}
		case AlgMUSCLES:
			var rec *Recovery
			rec, err = RunMUSCLES(sc, muscles.DefaultConfig(), sp.Width)
			if rec != nil {
				imputed = rec.Imputed
			}
		case AlgCD:
			var rec *Recovery
			rec, err = RunCD(sc, cd.DefaultConfig(), sp.Width)
			if rec != nil {
				imputed = rec.Imputed
			}
		case AlgInterpolate:
			imputed = RunInterpolate(sc).Imputed
		case AlgKNNI:
			imputed = RunKNNI(sc, 5, sp.Width).Imputed
		default:
			return cell, fmt.Errorf("unknown algorithm %q", alg)
		}
		if err != nil {
			return cell, err
		}
		_ = mask
		rmses = append(rmses, stats.RMSE(sc.Block.Truth, imputed))
		smapes = append(smapes, stats.SMAPE(sc.Block.Truth, imputed))
		maes = append(maes, stats.MAE(sc.Block.Truth, imputed))
	}
	cell.RMSE = JSONFloat(MeanOf(rmses))
	cell.SMAPE = JSONFloat(MeanOf(smapes))
	cell.MAE = JSONFloat(MeanOf(maes))
	return cell, nil
}

// newGridScenario generates the spec's frame, applies the configured
// missingness scenario (seeded deterministically per dataset × kind ×
// target), and wraps it as a harness Scenario with the expert (frame-order)
// reference policy over the spec's width.
func newGridScenario(sp Spec, gsc GridScenario, target string, seed uint64) (*Scenario, *dataset.ScenarioMask, error) {
	frame := sp.Generate()
	// The references eligible for dropout/transforms are exactly the ones the
	// algorithms consult: the first Width−1 non-target series in frame order
	// (the expert policy of NewScenarioExpert).
	var refs []string
	for _, name := range frame.Names() {
		if name != target {
			refs = append(refs, name)
		}
	}
	used := refs
	if sp.Width > 1 && len(used) > sp.Width-1 {
		used = used[:sp.Width-1]
	}
	mask, err := dataset.ApplyScenario(frame, dataset.ScenarioConfig{
		Kind:       dataset.ScenarioKind(gsc.Kind),
		Target:     target,
		BlockStart: sp.BlockStart,
		BlockLen:   sp.BlockLen,
		Refs:       used,
		RefRate:    gsc.RefRate,
		MeanRun:    gsc.MeanRun,
		Corr:       gsc.Corr,
		LevelShift: gsc.LevelShift,
		ScaleShift: gsc.ScaleShift,
		DriftPerDay: gsc.DriftPday,
		Seed:       seed ^ cellSeed(sp.Dataset+"|"+gsc.Kind+"|"+target),
	})
	if err != nil {
		return nil, nil, err
	}
	sc := &Scenario{Frame: frame, Target: target, Block: mask.Target, Refs: refs}
	return sc, mask, nil
}

// runEngineTKCM recovers the scenario's block through the production
// continuous-imputation engine: the target plus its references are fed row
// by row, every missing value (reference dropout included) is imputed at its
// arrival tick, and the completed target values over the block are returned.
// This is deliberately the serving hot path — the accuracy gate pins the
// engine users actually run, not the offline harness.
func runEngineTKCM(sc *Scenario, cfg core.Config) ([]float64, error) {
	width := len(sc.Refs) + 1
	names := make([]string, 0, width)
	names = append(names, sc.Target)
	names = append(names, sc.Refs...)
	// Explicit expert reference sets for every stream (frame order, skipping
	// self): the engine must never fall back to lazy correlation ranking,
	// whose map iteration order would break run-to-run determinism.
	refSets := make(map[string]core.ReferenceSet, width)
	for _, name := range names {
		rs := core.ReferenceSet{Stream: name}
		for _, other := range names {
			if other != name {
				rs.Candidates = append(rs.Candidates, other)
			}
		}
		refSets[name] = rs
	}
	cfg.Workers = 0 // serial imputation: deterministic cell results
	if cfg.WindowLength > sc.Frame.Len() {
		cfg.WindowLength = sc.Frame.Len()
	}
	eng, err := core.NewEngine(cfg, names, refSets)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, width)
	cols[0] = sc.Frame.ByName(sc.Target).Values
	for i, ref := range sc.Refs {
		cols[i+1] = sc.Frame.ByName(ref).Values
	}
	imputed := make([]float64, sc.Block.Len())
	row := make([]float64, width)
	n := sc.Frame.Len()
	for t := 0; t < n; t++ {
		for j, c := range cols {
			row[j] = c[t]
		}
		out, _, err := eng.Tick(row)
		if err != nil {
			return nil, fmt.Errorf("engine tick %d: %w", t, err)
		}
		if t >= sc.Block.Start && t < sc.Block.End() {
			imputed[t-sc.Block.Start] = out[0]
		}
	}
	return imputed, nil
}

// cellSeed hashes a cell identity (FNV-1a) into a seed perturbation, so each
// grid cell gets an independent deterministic scenario from one spec seed.
func cellSeed(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// JSONFloat is a float64 whose JSON form maps NaN to null (encoding/json
// rejects NaN); null unmarshals back to NaN. Grid metrics use it so cells
// with no comparable ticks stay representable in committed artifacts.
type JSONFloat float64

// MarshalJSON encodes NaN as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes null as NaN.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}
