package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// SummaryMetaMarker brackets the stamped metadata block at the top of
// summary.md. Everything between the markers is run identity (spec name,
// seed, scale); the golden test strips it before comparing, and everything
// below it is a pure function of the grid result.
const (
	SummaryMetaBegin = "<!-- tkcm-grid meta:begin -->"
	SummaryMetaEnd   = "<!-- tkcm-grid meta:end -->"
)

// RenderSummaryJSON renders the machine-readable paper_runs/summary.json:
// the grid identity plus every cell in deterministic key order. Two runs of
// the same grid produce byte-identical output (no timestamps, no
// durations).
func RenderSummaryJSON(res *GridResult) ([]byte, error) {
	if len(res.Cells) == 0 {
		return nil, fmt.Errorf("experiments: refusing to render a summary with zero cells")
	}
	sorted := *res
	sorted.Cells = append([]CellResult(nil), res.Cells...)
	sort.Slice(sorted.Cells, func(i, j int) bool { return sorted.Cells[i].Key() < sorted.Cells[j].Key() })
	raw, err := json.MarshalIndent(&sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// RenderSummaryMD renders the human-readable paper_runs/summary.md: one
// markdown table per dataset × pattern-length with algorithms as columns and
// scenarios as rows, RMSE (SMAPE%) per cell. The algorithm set must be
// uniform across the grid — a partial grid is a bug upstream, not something
// to render around.
func RenderSummaryMD(res *GridResult) ([]byte, error) {
	if len(res.Cells) == 0 {
		return nil, fmt.Errorf("experiments: refusing to render a summary with zero cells")
	}
	type group struct{ dataset string; l int }
	cells := make(map[group]map[string]map[string]CellResult) // group → scenario → alg → cell
	algSets := make(map[group][]string)
	var groups []group
	for _, c := range res.Cells {
		g := group{c.Dataset, c.PatternLength}
		if cells[g] == nil {
			cells[g] = make(map[string]map[string]CellResult)
			groups = append(groups, g)
		}
		if cells[g][c.Scenario] == nil {
			cells[g][c.Scenario] = make(map[string]CellResult)
		}
		if _, dup := cells[g][c.Scenario][c.Algorithm]; dup {
			return nil, fmt.Errorf("experiments: duplicate cell %s", c.Key())
		}
		cells[g][c.Scenario][c.Algorithm] = c
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].dataset != groups[j].dataset {
			return groups[i].dataset < groups[j].dataset
		}
		return groups[i].l < groups[j].l
	})
	// The algorithm set must match across scenarios and groups.
	for g, scs := range cells {
		var ref []string
		for _, sc := range sortedKeys(scs) {
			algs := sortedKeys(scs[sc])
			if ref == nil {
				ref = algs
			} else if strings.Join(ref, ",") != strings.Join(algs, ",") {
				return nil, fmt.Errorf("experiments: mismatched algorithm sets in %s/l=%d: %v vs %v",
					g.dataset, g.l, ref, algs)
			}
		}
		algSets[g] = ref
	}

	var buf bytes.Buffer
	buf.WriteString(SummaryMetaBegin + "\n")
	fmt.Fprintf(&buf, "grid: %s · seed %d · scale %s", res.Grid, res.Seed, res.Scale)
	if res.Quick {
		buf.WriteString(" · quick")
	}
	buf.WriteString("\n" + SummaryMetaEnd + "\n\n")
	buf.WriteString("# TKCM paper grid — accuracy summary\n\n")
	buf.WriteString("Each cell is RMSE with SMAPE% in parentheses, averaged over the\n")
	buf.WriteString("cell's target series; lower is better. `—` marks a cell with no\n")
	buf.WriteString("comparable ticks.\n")

	for _, g := range groups {
		algs := orderAlgs(algSets[g])
		fmt.Fprintf(&buf, "\n## %s (l = %d)\n\n", g.dataset, g.l)
		buf.WriteString("| scenario |")
		for _, a := range algs {
			fmt.Fprintf(&buf, " %s |", a)
		}
		buf.WriteString("\n|---|")
		for range algs {
			buf.WriteString("---|")
		}
		buf.WriteString("\n")
		for _, sc := range orderScenarios(sortedKeys(cells[g])) {
			fmt.Fprintf(&buf, "| %s |", sc)
			for _, a := range algs {
				c := cells[g][sc][a]
				buf.WriteString(" " + formatCell(c) + " |")
			}
			buf.WriteString("\n")
		}
	}
	return buf.Bytes(), nil
}

// formatCell renders one cell's metrics: "rmse (smape%)" or "—".
func formatCell(c CellResult) string {
	r, s := float64(c.RMSE), float64(c.SMAPE)
	if math.IsNaN(r) && math.IsNaN(s) {
		return "—"
	}
	rs, ss := "—", "—"
	if !math.IsNaN(r) {
		rs = fmt.Sprintf("%.4g", r)
	}
	if !math.IsNaN(s) {
		ss = fmt.Sprintf("%.3g%%", s)
	}
	return fmt.Sprintf("%s (%s)", rs, ss)
}

// orderAlgs orders algorithm columns: TKCM first, then the canonical
// comparison order, then anything else alphabetically.
func orderAlgs(algs []string) []string {
	rank := map[string]int{
		AlgTKCM: 0, AlgSPIRIT: 1, AlgMUSCLES: 2, AlgCD: 3, AlgInterpolate: 4, AlgKNNI: 5,
	}
	out := append([]string(nil), algs...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		if iok && jok {
			return ri < rj
		}
		if iok != jok {
			return iok
		}
		return out[i] < out[j]
	})
	return out
}

// orderScenarios orders scenario rows in the dataset package's presentation
// order, unknown kinds last alphabetically.
func orderScenarios(scs []string) []string {
	rank := map[string]int{
		"block": 0, "uniform": 1, "bursty": 2, "correlated": 3,
		"regime-shift": 4, "seasonal-drift": 5, "adversarial": 6,
	}
	out := append([]string(nil), scs...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		if iok && jok {
			return ri < rj
		}
		if iok != jok {
			return iok
		}
		return out[i] < out[j]
	})
	return out
}

// sortedKeys returns the map's keys sorted ascending.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StripSummaryMeta removes the stamped metadata block from a rendered
// summary.md, leaving only the deterministic body (used by the golden test).
func StripSummaryMeta(md []byte) []byte {
	s := string(md)
	begin := strings.Index(s, SummaryMetaBegin)
	end := strings.Index(s, SummaryMetaEnd)
	if begin < 0 || end < 0 || end < begin {
		return md
	}
	return []byte(s[:begin] + s[end+len(SummaryMetaEnd):])
}
