package experiments

import (
	"math"
	"strings"
	"testing"

	"tkcm/internal/cd"
	"tkcm/internal/core"
	"tkcm/internal/dataset"
	"tkcm/internal/muscles"
	"tkcm/internal/spirit"
	"tkcm/internal/timeseries"
)

// tinyScale is a miniature experiment scale for fast unit tests: 8 days of
// 5-minute SBR-like data, a 4-day window, and half-day missing blocks. The
// Flights and Chlorine entries are shrunk proportionally.
func tinyScale() Scale {
	base := func(window int) core.Config {
		return core.Config{K: 3, PatternLength: 24, D: 2, WindowLength: window, Norm: core.L2, Selection: core.SelectDP}
	}
	sbrTicks := 14 * 288
	return Scale{Name: "tiny", specs: map[string]Spec{
		DSSBR: {
			Dataset: DSSBR,
			Generate: func() *timeseries.Frame {
				return dataset.SBR(dataset.SBRConfig{Stations: 6, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.2})
			},
			Target: "s0", Targets: []string{"s0", "s1"},
			Cfg: base(10 * 288), BlockStart: sbrTicks - 288, BlockLen: 144,
			Width: 3, TicksPerDay: 288,
		},
		DSSBR1d: {
			Dataset: DSSBR1d,
			Generate: func() *timeseries.Frame {
				return dataset.SBR1d(dataset.SBRConfig{Stations: 6, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.2})
			},
			Target: "s0", Targets: []string{"s0", "s1"},
			Cfg: base(10 * 288), BlockStart: sbrTicks - 288, BlockLen: 144,
			Width: 3, TicksPerDay: 288,
		},
		DSFlights: {
			Dataset: DSFlights,
			Generate: func() *timeseries.Frame {
				return dataset.Flights(dataset.FlightsConfig{Airports: 5, Ticks: 7 * 1440, Seed: 7})
			},
			Target: "a0", Targets: []string{"a0", "a1"},
			Cfg: base(5 * 1440), BlockStart: 7*1440 - 720, BlockLen: 360,
			Width: 3, TicksPerDay: 1440,
		},
		DSChlorine: {
			Dataset: DSChlorine,
			Generate: func() *timeseries.Frame {
				return dataset.Chlorine(dataset.ChlorineConfig{Junctions: 8, Ticks: 6 * 288, Seed: 13, MaxDelayTicks: 144})
			},
			Target: "j3", Targets: []string{"j3", "j5"},
			Cfg: base(3 * 288), BlockStart: 6*288 - 288, BlockLen: 144,
			Width: 3, TicksPerDay: 288,
		},
	}}
}

func TestNewScenario(t *testing.T) {
	sp := tinyScale().Spec(DSSBR)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Target != "s0" || sc.Block.Len() != sp.BlockLen {
		t.Fatalf("scenario meta wrong: %+v", sc.Block)
	}
	if len(sc.Refs) != 5 {
		t.Fatalf("refs = %v, want the 5 other stations", sc.Refs)
	}
	target := sc.Frame.ByName("s0")
	for i := sc.Block.Start; i < sc.Block.End(); i++ {
		if !target.MissingAt(i) {
			t.Fatalf("tick %d not erased", i)
		}
	}
}

func TestScaleSpecUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset accepted")
		}
	}()
	tinyScale().Spec("nope")
}

func TestActiveScale(t *testing.T) {
	t.Setenv("TKCM_FULL", "")
	if got := ActiveScale().Name; got != "small" {
		t.Fatalf("default scale = %q, want small", got)
	}
	t.Setenv("TKCM_FULL", "1")
	if got := ActiveScale().Name; got != "paper" {
		t.Fatalf("TKCM_FULL scale = %q, want paper", got)
	}
}

func TestRunTKCMRecoversTinyBlock(t *testing.T) {
	sp := tinyScale().Spec(DSSBR)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunTKCM(sc, sp.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algorithm != AlgTKCM || len(rec.Imputed) != sp.BlockLen {
		t.Fatalf("recovery meta wrong: %+v", rec)
	}
	if math.IsNaN(rec.RMSE) || rec.RMSE > 3 {
		t.Fatalf("TKCM RMSE = %v on tiny SBR, want sane", rec.RMSE)
	}
	if rec.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestRunTKCMRefShortage(t *testing.T) {
	sp := tinyScale().Spec(DSSBR)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sp.Cfg
	cfg.D = 99
	if _, err := RunTKCM(sc, cfg); err == nil {
		t.Fatal("d beyond available references accepted")
	}
}

func TestCompareAllProducesAllAlgorithms(t *testing.T) {
	sp := tinyScale().Spec(DSSBR1d)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	rows, series, err := CompareAll(sc, sp.Cfg, sp.Width)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{AlgTKCM: true, AlgSPIRIT: true, AlgMUSCLES: true, AlgCD: true}
	for _, r := range rows {
		if !want[r.Algorithm] {
			t.Fatalf("unexpected algorithm %q", r.Algorithm)
		}
		delete(want, r.Algorithm)
		if math.IsNaN(r.RMSE) {
			t.Fatalf("%s RMSE is NaN", r.Algorithm)
		}
		if len(series[r.Algorithm]) != sc.Block.Len() {
			t.Fatalf("%s series length %d", r.Algorithm, len(series[r.Algorithm]))
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing algorithms: %v", want)
	}
}

func TestSimpleBaselineRunners(t *testing.T) {
	sp := tinyScale().Spec(DSSBR)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	interp := RunInterpolate(sc)
	if interp.Algorithm != AlgInterpolate || math.IsNaN(interp.RMSE) {
		t.Fatalf("interpolate recovery wrong: %+v", interp)
	}
	knni := RunKNNI(sc, 5, sp.Width)
	if knni.Algorithm != AlgKNNI || math.IsNaN(knni.RMSE) {
		t.Fatalf("kNNI recovery wrong: %+v", knni)
	}
}

// TestHeadlineShapeOnShiftedData is the repository's miniature Fig. 16: on
// the shifted SBR-1d data TKCM must beat SPIRIT, MUSCLES, and CD.
func TestHeadlineShapeOnShiftedData(t *testing.T) {
	sp := tinyScale().Spec(DSSBR1d)
	sc, err := NewSpecScenario(sp, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sp.Cfg
	cfg.PatternLength = 48 // give TKCM its trend-detection room
	tk, err := RunTKCM(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spirit_, err := RunSPIRIT(sc, spirit.DefaultConfig(), sp.Width)
	if err != nil {
		t.Fatal(err)
	}
	mus, err := RunMUSCLES(sc, muscles.DefaultConfig(), sp.Width)
	if err != nil {
		t.Fatal(err)
	}
	cdr, err := RunCD(sc, cd.DefaultConfig(), sp.Width)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []*Recovery{spirit_, mus, cdr} {
		if tk.RMSE >= comp.RMSE {
			t.Errorf("TKCM (%.4f) does not beat %s (%.4f) on shifted data", tk.RMSE, comp.Algorithm, comp.RMSE)
		}
	}
}

// TestPatternLengthHelpsOnShiftedData is the miniature Fig. 11: on SBR-1d a
// long pattern must beat l = 1 clearly.
func TestPatternLengthHelpsOnShiftedData(t *testing.T) {
	sp := tinyScale().Spec(DSSBR1d)
	run := func(l int) float64 {
		sc, err := NewSpecScenario(sp, "")
		if err != nil {
			t.Fatal(err)
		}
		cfg := sp.Cfg
		cfg.PatternLength = l
		rec, err := RunTKCM(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rec.RMSE
	}
	short, long := run(1), run(48)
	if long >= short {
		t.Fatalf("l=48 RMSE %v not better than l=1 RMSE %v on shifted data", long, short)
	}
}

func TestOscillationMeasure(t *testing.T) {
	flat := []float64{1, 1, 1, 1}
	if got := oscillation(flat); got != 0 {
		t.Fatalf("flat oscillation = %v", got)
	}
	jitter := []float64{1, -1, 1, -1, 1}
	if oscillation(jitter) <= oscillation([]float64{1, 1.1, 1.2, 1.3, 1.4}) {
		t.Fatal("jitter must oscillate more than a ramp")
	}
	if got := oscillation([]float64{5}); got != 0 {
		t.Fatalf("single point oscillation = %v", got)
	}
}

func TestAnalyzeSines(t *testing.T) {
	a := AnalyzeSines()
	if math.Abs(a.PearsonLinear-1) > 1e-9 {
		t.Fatalf("ρ(s, r1) = %v, want 1", a.PearsonLinear)
	}
	if math.Abs(a.PearsonShifted) > 0.05 {
		t.Fatalf("ρ(s, r2) = %v, want ≈ 0", a.PearsonShifted)
	}
	// Lemma 5.1 / Fig. 6: fewer near-zero patterns with the longer pattern.
	if a.NearZeroR1L60 > a.NearZeroR1L1 || a.NearZeroR2L60 > a.NearZeroR2L1 {
		t.Fatalf("near-zero counts must not grow with l: %+v", a)
	}
	if a.NearZeroR1L1 < 2 {
		t.Fatalf("l=1 must find several exact matches on r1, got %d", a.NearZeroR1L1)
	}
	// Fig. 7: with l = 1 the shifted reference is ambiguous (spread ≈ 2·0.86),
	// with l = 60 the ambiguity vanishes.
	if a.SpreadR2L1 < 1 {
		t.Fatalf("l=1 spread on shifted ref = %v, want the ±0.86 ambiguity", a.SpreadR2L1)
	}
	if a.SpreadR2L60 > 1e-6 {
		t.Fatalf("l=60 spread on shifted ref = %v, want ≈ 0", a.SpreadR2L60)
	}
}

func TestAblations(t *testing.T) {
	scale := tinyScale()
	sel, err := AblationSelection(scale, DSSBR1d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selection ablation rows = %d", len(sel))
	}
	var dpSum, greedySum float64
	for _, r := range sel {
		switch r.Variant {
		case "dp":
			dpSum = r.SumDissimilarity
		case "greedy":
			greedySum = r.SumDissimilarity
		}
	}
	if dpSum > greedySum+1e-9 {
		t.Fatalf("DP mean dissimilarity sum %v exceeds greedy %v", dpSum, greedySum)
	}
	norms, err := AblationNorms(scale, DSSBR1d)
	if err != nil {
		t.Fatal(err)
	}
	if len(norms) != 3 {
		t.Fatalf("norm ablation rows = %d", len(norms))
	}
	weights, err := AblationWeighting(scale, DSSBR1d)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 2 {
		t.Fatalf("weighting ablation rows = %d", len(weights))
	}
}

func TestFigureFunctionsTiny(t *testing.T) {
	scale := tinyScale()

	t.Run("fig11", func(t *testing.T) {
		rows, err := Fig11PatternLength(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(AllDatasets)*len(Fig11LValues) {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if math.IsNaN(r.RMSE) {
				t.Fatalf("NaN RMSE in %+v", r)
			}
		}
	})

	t.Run("fig12", func(t *testing.T) {
		series, err := Fig12Recovery(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != len(AllDatasets) {
			t.Fatalf("series = %d", len(series))
		}
		for _, s := range series {
			if len(s.Truth) == 0 || len(s.ShortPattern) != len(s.Truth) || len(s.LongPattern) != len(s.Truth) {
				t.Fatalf("series lengths wrong for %s", s.Dataset)
			}
		}
	})

	t.Run("fig13", func(t *testing.T) {
		res, err := Fig13Epsilon(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(Fig11LValues) {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		if math.IsNaN(res.PearsonTargetRef) {
			t.Fatal("scatter correlation is NaN")
		}
	})

	t.Run("fig14", func(t *testing.T) {
		rows, err := Fig14BlockLength(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6+5 {
			t.Fatalf("rows = %d, want 6 SBR-1d + 5 Chlorine", len(rows))
		}
	})

	t.Run("fig17", func(t *testing.T) {
		rows, err := Fig17Runtime(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no runtime rows")
		}
		for _, r := range rows {
			if r.PerImputation <= 0 {
				t.Fatalf("non-positive runtime in %+v", r)
			}
		}
	})

	t.Run("perf", func(t *testing.T) {
		rows, err := PerfBreakdown(scale)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.ExtractionFraction <= 0 || r.ExtractionFraction > 1 {
				t.Fatalf("extraction fraction %v out of range", r.ExtractionFraction)
			}
		}
		// Sec. 7.4: extraction dominates at small k; larger k grows the
		// selection share. Wall-clock fractions flake on fast machines at
		// tiny scale, so the dominance claims are asserted on the
		// deterministic operation counts instead.
		if rows[0].ExtractionOps <= rows[0].SelectionOps {
			t.Errorf("extraction ops at k=5 = %d not dominant over selection ops %d",
				rows[0].ExtractionOps, rows[0].SelectionOps)
		}
		selShare := func(r BreakdownRow) float64 {
			return float64(r.SelectionOps) / float64(r.ExtractionOps+r.SelectionOps)
		}
		if selShare(rows[1]) <= selShare(rows[0]) {
			t.Errorf("selection op share must grow with k: %v → %v", selShare(rows[0]), selShare(rows[1]))
		}
	})
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.25)
	tbl.AddRow("b", 100)
	var sb strings.Builder
	if _, err := tbl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "alpha", "1.25", "100", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 2, 1, 0, 1}, 8)
	if len([]rune(got)) != 8 {
		t.Fatalf("sparkline length = %d, want 8 (%q)", len([]rune(got)), got)
	}
	// Constant input must render without panicking (zero range).
	_ = Sparkline([]float64{5, 5, 5}, 3)
	// Downsampling path.
	if n := len([]rune(Sparkline(make([]float64, 100), 10))); n != 10 {
		t.Fatalf("downsampled length = %d", n)
	}
}

func TestMeanOf(t *testing.T) {
	if got := MeanOf([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("MeanOf = %v", got)
	}
	if got := MeanOf(nil); !math.IsNaN(got) {
		t.Fatalf("empty MeanOf = %v", got)
	}
}

func TestAlignmentExperiment(t *testing.T) {
	rows, err := AlignmentExperiment(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 arms", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if math.IsNaN(r.RMSE) {
			t.Fatalf("NaN RMSE in %+v", r)
		}
		byName[r.Variant] = r.RMSE
	}
	// Alignment must rescue the l = 1 configuration on shifted data
	// (the Sec. 8 hypothesis).
	if byName["aligned l=1"] >= byName["shifted l=1"] {
		t.Errorf("alignment did not help l=1: aligned %v vs shifted %v",
			byName["aligned l=1"], byName["shifted l=1"])
	}
}

func TestEstimateLags(t *testing.T) {
	sp := tinyScale().Spec(DSSBR1d)
	frame := sp.Generate()
	lags := estimateLags(frame, sp.Target, []string{"s1", "s2"}, frame.Len()/2, 288)
	if len(lags) != 2 {
		t.Fatalf("lags = %v", lags)
	}
	for _, lag := range lags {
		if lag == 0 {
			t.Log("warning: estimated zero lag on shifted data (possible but unlikely)")
		}
		if lag < -288 || lag > 288 {
			t.Fatalf("lag %d outside [-288, 288]", lag)
		}
	}
}

func TestFig10CalibrationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	rows, err := Fig10Calibration(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Three datasets × (d values that fit + 5 k values); every row finite.
	if len(rows) == 0 {
		t.Fatal("no calibration rows")
	}
	params := map[string]bool{}
	for _, r := range rows {
		if math.IsNaN(r.RMSE) || r.RMSE < 0 {
			t.Fatalf("bad RMSE in %+v", r)
		}
		params[r.Param] = true
	}
	if !params["d"] || !params["k"] {
		t.Fatalf("missing sweep dimension in %v", params)
	}
}

func TestFig15And16Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	series, err := Fig15Comparison(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(AllDatasets) {
		t.Fatalf("fig15 datasets = %d", len(series))
	}
	for _, s := range series {
		if len(s.Rows) != 4 {
			t.Fatalf("fig15 %s algorithms = %d, want 4", s.Dataset, len(s.Rows))
		}
	}
	rows, err := Fig16Summary(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(AllDatasets) {
		t.Fatalf("fig16 rows = %d, want %d", len(rows), 4*len(AllDatasets))
	}
	for _, r := range rows {
		if math.IsNaN(r.RMSE) {
			t.Fatalf("fig16 NaN RMSE for %s/%s", r.Dataset, r.Algorithm)
		}
	}
}
