package experiments

import (
	"fmt"
	"os"

	"tkcm/internal/core"
	"tkcm/internal/dataset"
	"tkcm/internal/timeseries"
)

// Dataset names used by the experiment index.
const (
	DSSBR      = "SBR"
	DSSBR1d    = "SBR-1d"
	DSFlights  = "Flights"
	DSChlorine = "Chlorine"
)

// AllDatasets lists the four paper datasets in presentation order.
var AllDatasets = []string{DSSBR, DSSBR1d, DSFlights, DSChlorine}

// Spec fully describes how one dataset is exercised at a given scale: how to
// generate it, which series to impute, the TKCM configuration, and the
// missing-block geometry.
type Spec struct {
	Dataset string
	// Generate builds a fresh frame (generators are deterministic, so every
	// call yields identical data).
	Generate func() *timeseries.Frame
	// Target is the series the headline experiments impute. Fig. 16 imputes
	// Targets (4 series per dataset).
	Target  string
	Targets []string
	// Cfg is the TKCM configuration at this scale (l, k, d, L).
	Cfg core.Config
	// BlockStart/BlockLen is the default missing block.
	BlockStart, BlockLen int
	// Width is the number of streams handed to the matrix-based algorithms
	// (target + references); the paper gives all algorithms the same data.
	Width int
	// TicksPerDay at the dataset's sampling rate (288 at 5-min, 1440 at
	// 1-min); block-length sweeps are expressed in days.
	TicksPerDay int
}

// Scale selects the experiment sizing. SmallScale keeps `go test -bench=.`
// in CI territory; PaperScale restores the paper's dimensions (1-year SBR
// window etc.) and is selected by setting TKCM_FULL=1.
type Scale struct {
	Name string
	// specs keyed by dataset name.
	specs map[string]Spec
}

// Spec returns the spec for the named dataset; it panics on unknown names
// (programming error in the bench tables).
func (sc Scale) Spec(name string) Spec {
	sp, ok := sc.specs[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	return sp
}

// ActiveScale returns PaperScale when TKCM_FULL=1 is set, else SmallScale.
func ActiveScale() Scale {
	if os.Getenv("TKCM_FULL") == "1" {
		return PaperScale()
	}
	return SmallScale()
}

// SmallScale sizes every dataset so a full figure reproduction finishes in
// seconds while preserving every structural property (the daily period fits
// the window many times over; blocks span full days).
func SmallScale() Scale {
	sbrTicks := 20 * 288  // 20 days at 5-minute sampling
	sbrWindow := 14 * 288 // 2-week streaming window
	sbrBlockLen := 288    // 1 day missing
	sbrBlockStart := sbrTicks - 2*288

	flightsTicks := 8801 // paper size (already small)
	chlTicks := 2448     // 8.5 days
	chlJunctions := 24

	mk := func(dataset string, gen func() *timeseries.Frame, target string, targets []string,
		cfg core.Config, bs, bl, width, tpd int) Spec {
		return Spec{
			Dataset: dataset, Generate: gen, Target: target, Targets: targets,
			Cfg: cfg, BlockStart: bs, BlockLen: bl, Width: width, TicksPerDay: tpd,
		}
	}
	baseCfg := func(window int) core.Config {
		cfg := core.DefaultConfig()
		cfg.WindowLength = window
		return cfg
	}

	return Scale{Name: "small", specs: map[string]Spec{
		DSSBR: mk(DSSBR,
			func() *timeseries.Frame {
				return dataset.SBR(dataset.SBRConfig{Stations: 10, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.25})
			},
			"s0", []string{"s0", "s1", "s2", "s3"},
			baseCfg(sbrWindow), sbrBlockStart, sbrBlockLen, 4, 288),
		DSSBR1d: mk(DSSBR1d,
			func() *timeseries.Frame {
				return dataset.SBR1d(dataset.SBRConfig{Stations: 10, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.25})
			},
			"s0", []string{"s0", "s1", "s2", "s3"},
			baseCfg(sbrWindow), sbrBlockStart, sbrBlockLen, 4, 288),
		DSFlights: mk(DSFlights,
			func() *timeseries.Frame {
				return dataset.Flights(dataset.FlightsConfig{Airports: 8, Ticks: flightsTicks, Seed: 7})
			},
			"a0", []string{"a0", "a1", "a2", "a3"},
			baseCfg(6000), 6200, 1440, 4, 1440),
		DSChlorine: mk(DSChlorine,
			func() *timeseries.Frame {
				return dataset.Chlorine(dataset.ChlorineConfig{Junctions: chlJunctions, Ticks: chlTicks, Seed: 13, MaxDelayTicks: 288})
			},
			"j6", []string{"j6", "j2", "j12", "j18"},
			// 20% of the dataset missing, as in the paper's Fig. 16 setup.
			baseCfg(1700), chlTicks-chlTicks/5, chlTicks/5, 4, 288),
	}}
}

// PaperScale restores the paper's dimensions: 1-year SBR/SBR-1d windows
// (Sec. 7.2; the competitor comparison uses 6 months, Sec. 7.3.3), the full
// Flights and Chlorine datasets, 1-week SBR blocks, and 20% blocks for the
// small datasets.
func PaperScale() Scale {
	sbrTicks := 105120 + 7*288 // 1 year + room for the missing week
	sbrWindow := 105120 / 2    // 6 months, the Fig. 16 setting
	sbrBlockLen := 7 * 288     // 1 week
	sbrBlockStart := 105120

	flightsTicks := 8801
	chlTicks := 4310
	chlJunctions := 166

	baseCfg := func(window int) core.Config {
		cfg := core.DefaultConfig()
		cfg.WindowLength = window
		return cfg
	}

	return Scale{Name: "paper", specs: map[string]Spec{
		DSSBR: {
			Dataset: DSSBR,
			Generate: func() *timeseries.Frame {
				return dataset.SBR(dataset.SBRConfig{Stations: 10, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.25})
			},
			Target: "s0", Targets: []string{"s0", "s1", "s2", "s3"},
			Cfg: baseCfg(sbrWindow), BlockStart: sbrBlockStart, BlockLen: sbrBlockLen,
			Width: 4, TicksPerDay: 288,
		},
		DSSBR1d: {
			Dataset: DSSBR1d,
			Generate: func() *timeseries.Frame {
				return dataset.SBR1d(dataset.SBRConfig{Stations: 10, Ticks: sbrTicks, Seed: 1, NoiseSD: 0.25})
			},
			Target: "s0", Targets: []string{"s0", "s1", "s2", "s3"},
			Cfg: baseCfg(sbrWindow), BlockStart: sbrBlockStart, BlockLen: sbrBlockLen,
			Width: 4, TicksPerDay: 288,
		},
		DSFlights: {
			Dataset: DSFlights,
			Generate: func() *timeseries.Frame {
				return dataset.Flights(dataset.FlightsConfig{Airports: 8, Ticks: flightsTicks, Seed: 7})
			},
			Target: "a0", Targets: []string{"a0", "a1", "a2", "a3"},
			Cfg: baseCfg(7000), BlockStart: 7040, BlockLen: flightsTicks / 5,
			Width: 4, TicksPerDay: 1440,
		},
		DSChlorine: {
			Dataset: DSChlorine,
			Generate: func() *timeseries.Frame {
				return dataset.Chlorine(dataset.ChlorineConfig{Junctions: chlJunctions, Ticks: chlTicks, Seed: 13, MaxDelayTicks: 288})
			},
			Target: "j6", Targets: []string{"j6", "j20", "j64", "j110"},
			Cfg: baseCfg(3400), BlockStart: 3448, BlockLen: chlTicks / 5,
			Width: 4, TicksPerDay: 288,
		},
	}}
}

// NewSpecScenario generates the spec's frame, injects the default block into
// the given target (Spec.Target when target == ""), and returns the
// scenario. References follow the paper's expert policy (frame order), not
// correlation ranking — see NewScenarioExpert.
func NewSpecScenario(sp Spec, target string) (*Scenario, error) {
	if target == "" {
		target = sp.Target
	}
	frame := sp.Generate()
	return NewScenarioExpert(frame, target, sp.BlockStart, sp.BlockLen)
}
