package experiments

import "testing"

// TestWideEngineThroughputSmoke runs one small wide-engine measurement per
// mode and sanity-checks the reported rows: the configuration must round-
// trip, every tick must impute the missing 5%, and the lean mode must not
// report more allocations than the diagnostic modes.
func TestWideEngineThroughputSmoke(t *testing.T) {
	const (
		width  = 48
		winLen = 512 // smallest round size hosting k=5 patterns of l=72
		ticks  = 40
	)
	var lean, eager WideRow
	for _, wc := range WideCases() {
		row, err := WideEngineThroughput(width, winLen, ticks, 0.05, wc)
		if err != nil {
			t.Fatalf("%s: %v", wc.Mode, err)
		}
		if row.Mode != wc.Mode || row.Eager != wc.Eager || row.SkipDiagnostics != wc.SkipDiagnostics {
			t.Fatalf("row misreports configuration: %+v", row)
		}
		if row.Width != width || row.Ticks != ticks {
			t.Fatalf("row misreports dimensions: %+v", row)
		}
		wantMiss := width * 5 / 100
		if row.MissingPerTick != wantMiss {
			t.Fatalf("missing per tick = %d, want %d", row.MissingPerTick, wantMiss)
		}
		if row.Imputations != wantMiss*ticks {
			t.Fatalf("imputations = %d, want %d (every missing value imputed)", row.Imputations, wantMiss*ticks)
		}
		if row.TicksPerSec <= 0 || row.NsPerTick <= 0 {
			t.Fatalf("non-positive rates: %+v", row)
		}
		switch wc.Mode {
		case "eager":
			eager = row
		case "lazy+lean":
			lean = row
		}
	}
	if lean.AllocsPerTick > eager.AllocsPerTick {
		t.Fatalf("lean mode allocates more than the diagnostic mode: %v > %v",
			lean.AllocsPerTick, eager.AllocsPerTick)
	}
	if err := func() error {
		_, err := WideEngineThroughput(wideRefPool, winLen, ticks, 0.05, WideCases()[0])
		return err
	}(); err == nil {
		t.Fatal("width ≤ reference pool accepted")
	}
}

// TestWideScenarioMissingDistinct pins MarkMissing to NaN exactly
// MissingPerTick distinct streams per tick, including at high missing
// fractions where a strided rotation would collide with itself.
func TestWideScenarioMissingDistinct(t *testing.T) {
	for _, frac := range []float64{0.05, 0.5, 1.0} {
		s, err := NewWideScenario(40, frac) // Targets = 28, divisible by 7
		if err != nil {
			t.Fatal(err)
		}
		row := make([]float64, s.Width)
		for tick := 0; tick < 3*s.Targets; tick++ {
			s.FillRow(tick, row)
			s.MarkMissing(tick, row)
			n := 0
			for _, v := range row {
				if v != v { // NaN
					n++
				}
			}
			if n != s.MissingPerTick {
				t.Fatalf("frac %v tick %d: %d streams missing, want %d", frac, tick, n, s.MissingPerTick)
			}
		}
	}
}
