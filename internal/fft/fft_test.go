package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestTransformRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		x := randomComplex(seed, 64)
		orig := append([]complex128(nil), x...)
		Transform(x, false)
		Transform(x, true)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformKnownSpectrum(t *testing.T) {
	// A pure complex exponential concentrates in one bin.
	n := 32
	k := 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/float64(n)))
	}
	Transform(x, false)
	for bin := range x {
		mag := cmplx.Abs(x[bin])
		if bin == k {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Fatalf("bin %d magnitude %v, want %d", bin, mag, n)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage %v in bin %d", mag, bin)
		}
	}
}

func TestTransformNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length accepted")
		}
	}()
	Transform(make([]complex128, 6), false)
}

func TestTransformEmpty(t *testing.T) {
	Transform(nil, false) // must not panic
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{4, 5})
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("conv = %v, want %v", got, want)
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("empty convolution must be nil")
	}
}

// TestConvolveMatchesNaive compares the FFT convolution against the direct
// O(n·m) computation on random inputs.
func TestConvolveMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%40 + 1
		m := int(mRaw)%40 + 1
		a := randomReal(seed, n)
		b := randomReal(seed^0x77, m)
		got := Convolve(a, b)
		want := make([]float64, n+m-1)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossCorrelateMatchesNaive compares the sliding dot products against
// the direct computation.
func TestCrossCorrelateMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		n := int(nRaw)%60 + 2
		l := int(lRaw)%n + 1
		a := randomReal(seed, n)
		q := randomReal(seed^0x55, l)
		got := CrossCorrelate(a, q)
		if len(got) != n-l+1 {
			return false
		}
		for j := 0; j <= n-l; j++ {
			want := 0.0
			for x := 0; x < l; x++ {
				want += a[j+x] * q[x]
			}
			if math.Abs(got[j]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossCorrelateTemplateTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized template accepted")
		}
	}()
	CrossCorrelate([]float64{1}, []float64{1, 2})
}

func randomComplex(seed int64, n int) []complex128 {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/100 - 10
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(next(), next())
	}
	return out
}

func randomReal(seed int64, n int) []float64 {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	out := make([]float64, n)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = float64(state%2000)/100 - 10
	}
	return out
}
