// Package fft provides a minimal iterative radix-2 fast Fourier transform
// and the real-valued correlation built on it. It exists to accelerate
// TKCM's pattern-extraction phase (the paper's Sec. 8 future-work item:
// "future research must focus on speeding up the pattern extraction
// phase"): the L2 dissimilarity profile decomposes into window energies
// (prefix sums) and a sliding cross-correlation, and the latter drops from
// O(l·L) to O(L·log L) with an FFT.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Transform computes the in-place radix-2 FFT of x. len(x) must be a power
// of two; it panics otherwise. With invert = true it computes the inverse
// transform (including the 1/n scaling).
func Transform(x []complex128, invert bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		// Standard convention: forward kernel exp(−2πi/n), inverse +.
		ang := -2 * math.Pi / float64(length)
		if invert {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if invert {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)−1) computed via FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	Transform(fa, false)
	Transform(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	Transform(fa, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// CrossCorrelate returns c with c[j] = Σ_x a[j+x]·q[x] for
// j = 0..len(a)−len(q), the sliding dot products of the template q against
// a. It panics when q is longer than a.
func CrossCorrelate(a, q []float64) []float64 {
	if len(q) > len(a) {
		panic(fmt.Sprintf("fft: template length %d exceeds signal length %d", len(q), len(a)))
	}
	if len(q) == 0 {
		return make([]float64, len(a)+1)
	}
	// Correlation = convolution with the reversed template.
	rev := make([]float64, len(q))
	for i, v := range q {
		rev[len(q)-1-i] = v
	}
	conv := Convolve(a, rev)
	out := make([]float64, len(a)-len(q)+1)
	copy(out, conv[len(q)-1:len(q)-1+len(out)])
	return out
}
