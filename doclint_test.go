package tkcm_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// publicPackages are held to the full standard: every exported symbol
// documented. internalPackages only require a package comment (a doc.go or
// a commented main file), keeping intent discoverable via go doc.
var (
	publicPackages   = []string{".", "client"}
	internalPackages = []string{
		"internal/audit", "internal/baseline", "internal/benchcases", "internal/benchfmt",
		"internal/cd", "internal/core", "internal/dataset", "internal/dtw",
		"internal/experiments", "internal/fft", "internal/linalg", "internal/muscles",
		"internal/obs", "internal/ring", "internal/server", "internal/shard",
		"internal/spirit", "internal/stats", "internal/timeseries", "internal/wal",
		"internal/window", "internal/wire",
	}
)

// TestDocLint is the repo's documentation gate (run by CI as its doc-lint
// step): it fails on any undocumented exported symbol in the public
// packages and on any package — public or internal — without a package
// comment.
func TestDocLint(t *testing.T) {
	for _, dir := range publicPackages {
		for _, problem := range lintPackage(t, dir, true) {
			t.Errorf("%s", problem)
		}
	}
	for _, dir := range internalPackages {
		for _, problem := range lintPackage(t, dir, false) {
			t.Errorf("%s", problem)
		}
	}
}

// lintPackage parses one package directory (tests excluded) and returns its
// documentation violations.
func lintPackage(t *testing.T, dir string, exportedSymbols bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var problems []string
	hasPkgDoc := false
	parsed := 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		parsed++
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
		if exportedSymbols {
			problems = append(problems, lintFile(fset, f)...)
		}
	}
	if parsed == 0 {
		t.Fatalf("package %s has no Go files", dir)
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package has no package comment (add a doc.go)", dir))
	}
	return problems
}

// lintFile reports exported declarations without doc comments.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		problems = append(problems, fmt.Sprintf("%s: exported %s %s is undocumented",
			fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || isExemptMethod(d) {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return problems
}

// lintGenDecl checks exported types, consts and vars. A doc comment on the
// grouped declaration covers its specs (the standard Go convention for
// const/var blocks); an individual spec comment also counts.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if !groupDoc && (sp.Doc == nil || strings.TrimSpace(sp.Doc.Text()) == "") {
				report(sp.Pos(), "type", sp.Name.Name)
			}
			if st, ok := sp.Type.(*ast.StructType); ok && sp.Name.IsExported() {
				lintStructFields(sp.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if !name.IsExported() {
					continue
				}
				documented := groupDoc ||
					(sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != "") ||
					(sp.Comment != nil && strings.TrimSpace(sp.Comment.Text()) != "")
				if !documented {
					report(name.Pos(), "value", name.Name)
				}
			}
		}
	}
}

// lintStructFields requires docs on exported fields of exported structs —
// these are API surface exactly like methods.
func lintStructFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, field := range st.Fields.List {
		documented := (field.Doc != nil && strings.TrimSpace(field.Doc.Text()) != "") ||
			(field.Comment != nil && strings.TrimSpace(field.Comment.Text()) != "")
		for _, name := range field.Names {
			if name.IsExported() && !documented {
				report(name.Pos(), "field", typeName+"."+name.Name)
			}
		}
	}
}

// isExemptMethod skips method names whose meaning is fixed by universal
// interfaces — documenting "Error returns the error string" adds nothing.
func isExemptMethod(d *ast.FuncDecl) bool {
	if d.Recv == nil {
		return false
	}
	switch d.Name.Name {
	case "Error", "String":
		return true
	}
	return false
}
